package core

import (
	"fmt"

	"crest/internal/engine"
	"crest/internal/layout"
	"crest/internal/memnode"
	"crest/internal/rdma"
	"crest/internal/sim"
	"crest/internal/trace"
)

// Coordinator executes CREST transactions. Each coordinator belongs to
// one compute node and one simulated process.
type Coordinator struct {
	cn   *ComputeNode
	gid  uint64
	qps  *engine.QPCache
	log  *memnode.LogSegment
	logN []*memnode.Node
	home int // shard group holding the log (commit decision)
	// scFree recycles attempt scratch (see execScratch).
	scFree []*execScratch
}

// NewCoordinator creates coordinator id (globally unique across
// compute nodes).
func (cn *ComputeNode) NewCoordinator(id int) *Coordinator {
	db := cn.db
	pool := db.Pool
	c := &Coordinator{
		cn:  cn,
		gid: uint64(id) + 1,
		qps: engine.NewQPCache(db.Fabric),
		log: pool.AllocLog(logSegmentSize),
	}
	c.qps.Warm(pool)
	c.logN = pool.LogNodes(id, pool.Replicas()+1)
	c.home = pool.ShardOfNode(c.logN[0].ID)
	cn.sys.logs = append(cn.sys.logs, recoveryLog{seg: c.log, nodes: c.logN})
	return c
}

// writeShardsAccs returns the shard groups of every written record.
func (c *Coordinator) writeShardsAccs(accs []*access) engine.ShardSet {
	pool := c.cn.db.Pool
	var parts engine.ShardSet
	for _, acc := range accs {
		if acc.intentWrite {
			parts.Add(pool.ShardOfNode(acc.obj.primary.ID))
		}
	}
	return parts
}

// valCheck is one cell read that must be validated against the memory
// pool at commit.
//
// Base-value reads capture the expected epoch/timestamp at read time:
// no local writer of the cell can commit (and thus no write-back can
// move the pool) before this reader resolves, so the captured value is
// exactly what the pool must still hold — and it stays correct even if
// the record cache refetches the record meanwhile.
//
// Local-version reads (live == true) instead compare against the
// record cache's current epoch view at validation time: the version's
// chain may legitimately fold into the pool before this reader
// validates, advancing pool and cache in lockstep, while any foreign
// write diverges the two. readV remembers which version was read so
// the commit-time supersede check (validateLocal) can detect a local
// writer that committed in between.
type valCheck struct {
	cell  int
	en    uint16
	ts    uint64
	live  bool
	readV *version // nil for base reads
}

// access is the per-record state of one attempt.
type access struct {
	op            *engine.Op
	key           layout.Key
	rk            recKey
	lay           *layout.Record
	obj           *object
	intentWrite   bool
	registered    bool // reference counted on obj
	tracked       bool // access mask registered with the conflict tracker
	streakCounted bool // counted toward the object's piggyback streak
	readVals      [][]byte
	writeVals     [][]byte
	checks        []valCheck
}

// depSet is an insertion-ordered set of transactions to wait on. The
// handful of dependencies a transaction collects makes a linear scan
// cheaper than a map.
type depSet struct {
	list []*txnState
}

func (d *depSet) add(t *txnState) {
	for _, s := range d.list {
		if s == t {
			return
		}
	}
	d.list = append(d.list, t)
}

// Execute runs one attempt of t; the caller owns retry and backoff.
func (c *Coordinator) Execute(p *sim.Proc, t *engine.Txn) engine.Attempt {
	if !c.cn.sys.opts.Localized {
		return c.executeDirect(p, t)
	}
	return c.executeLocalized(p, t)
}

// executeLocalized is the full CREST path: record cache, pipelined
// execution, dependency tracking and parallel commits.
func (c *Coordinator) executeLocalized(p *sim.Proc, t *engine.Txn) engine.Attempt {
	db := c.cn.db
	at := engine.BeginAttempt(db, p, c.gid, c.home, t)
	sc := c.getScratch()
	defer c.putScratch(sc)

	me := &txnState{id: c.cn.nextTxnID(), whyID: at.WhyID()}
	at.Span().SetTxn(me.id)
	// deps are the creators of versions this transaction read or
	// overwrote (§5.1): it commits only after they commit, and aborts
	// with them.
	deps := &sc.deps

	abortTxn := func(reason engine.AbortReason, falseC bool) engine.Attempt {
		at.Fail(reason, falseC)
		me.resolve(txnAborted, 0)
		c.applyRelease(p, sc, sc.accs)
		return at.Done()
	}

	// --- Execution phase: pipelined blocks (§5.2). ---
	for bi := range t.Blocks {
		blk := &t.Blocks[bi]
		if gated := c.prepare(p, t, blk, sc); gated {
			return abortTxn(engine.AbortWait, false)
		}
		if db.Pool.Shards() > 1 && c.writeShardsAccs(sc.accs).Beyond(c.home) {
			at.MarkCrossShard()
		}
		at.Phase(trace.PhaseLock)
		admitReason, admitFalse := c.admit(p, sc, sc.blockAccs)
		at.Phase(trace.PhaseExec)
		if admitReason != engine.AbortNone {
			return abortTxn(admitReason, admitFalse)
		}
		// Charge the block's compute-node CPU cost (hook execution,
		// copies) before taking any local lock: the computation does
		// not need the locks, and paying it inside the critical
		// section would convoy every hot record's local queue.
		var blockCost sim.Duration
		for oi := range blk.Ops {
			op := &blk.Ops[oi]
			blockCost += db.Cost.OpCost(len(op.ReadCells) + len(op.WriteCells))
		}
		p.Sleep(blockCost)
		// Inner-block 2PL: local locks in (TableID, Key) order. The
		// critical section itself is pure bookkeeping (zero virtual
		// time), so the locks only order concurrent accessors.
		locked := append(sc.lockOrder[:0], sc.blockAccs...)
		sc.lockOrder = locked
		sortAccs(locked)
		for _, acc := range locked {
			if acc.obj.mu.Held() {
				// The lock-wait depth gauge counts coordinators about to
				// park behind a held local lock; an uncontended Lock
				// never parks and stays off the gauge.
				db.Met.LockWaiters.Inc()
				holder := acc.obj.whyOwner
				t0 := p.Now()
				acc.obj.mu.Lock(p)
				db.Met.LockWaiters.Dec()
				db.Why.LocalWait(p, acc.rk.table, acc.key, holder, p.Now().Sub(t0))
				db.Flight.Wait(p, holder, p.Now().Sub(t0))
			} else {
				acc.obj.mu.Lock(p)
			}
			acc.obj.whyOwner = me.whyID
		}
		if me.tsExec == 0 {
			// TS_exec is assigned after the first block's local locks
			// are acquired (§5.2).
			me.tsExec = c.cn.nextTSExec()
		}
		reason := engine.AbortNone
		for oi := range blk.Ops {
			op := &blk.Ops[oi]
			acc := findAcc(sc.accs, recKey{op.Table, op.ResolveKey(t.State)})
			if reason = c.execOp(p, t, me, acc, deps); reason != engine.AbortNone {
				break
			}
		}
		for _, acc := range locked {
			acc.obj.whyOwner = 0
			acc.obj.mu.Unlock()
		}
		if reason != engine.AbortNone {
			return abortTxn(reason, false)
		}
	}

	// --- Validation (§6): dependencies first, then remote epochs,
	// then the local supersede check immediately before the commit
	// timestamp is drawn (no yield in between, so the serial position
	// is exact). ---
	at.Phase(trace.PhaseValidate)
	for _, dep := range deps.list {
		waited := dep.status == txnPending
		t0 := p.Now()
		dep.await(p)
		if waited {
			db.Why.DependencyWait(p, dep.whyID, p.Now().Sub(t0))
			db.Flight.Wait(p, dep.whyID, p.Now().Sub(t0))
		}
		if dep.status == txnAborted {
			return abortTxn(engine.AbortDependency, false)
		}
	}
	if reason, falseC := c.validateRemote(p, sc, sc.accs, at.Start()); reason != engine.AbortNone {
		return abortTxn(reason, falseC)
	}
	if !c.validateLocal(sc.accs) {
		return abortTxn(engine.AbortValidation, false)
	}

	// --- Commit (§6): timestamp, redo log, then parallel apply. ---
	at.Phase(trace.PhaseLog)
	ts := db.TSO.Next()
	me.tsAssigned = ts
	c.writeRedoLog(p, sc, me, ts, sc.accs, deps)
	me.resolve(txnCommitted, ts)
	at.Phase(trace.PhaseApply)
	c.applyRelease(p, sc, sc.accs)
	c.recordHistory(t, sc.accs, ts)
	return at.Done()
}

// prepare resolves the block's keys into accesses (sc.blockAccs),
// creating local objects, sitting out any pending release windows, and
// pinning the objects with reference counts. A writer reference
// registered while a drain is pending would itself keep `writers`
// above zero and stall the drain, so gating happens strictly before
// registration.
func (c *Coordinator) prepare(p *sim.Proc, t *engine.Txn, blk *engine.Block, sc *execScratch) (gated bool) {
	// Pass 1: resolve keys and local objects; no references yet.
	sc.blockAccs = sc.blockAccs[:0]
	for oi := range blk.Ops {
		op := &blk.Ops[oi]
		key := op.ResolveKey(t.State)
		rk := recKey{op.Table, key}
		if findAcc(sc.accs, rk) != nil || findAcc(sc.blockAccs, rk) != nil {
			panic(fmt.Sprintf("core: record %v accessed by two ops of one transaction", rk))
		}
		acc := sc.newAccess()
		acc.op = op
		acc.key = key
		acc.rk = rk
		acc.lay = c.cn.sys.layouts[op.Table]
		acc.intentWrite = op.IsWrite()
		acc.obj = c.getOrCreate(p, rk, acc.lay)
		sc.blockAccs = append(sc.blockAccs, acc)
	}
	// Pass 2: sit out release windows on every write target. Waiting
	// is only safe while this transaction holds nothing (its first
	// block): holding references while waiting can deadlock pipelines
	// against each other, so later blocks abort instead and retry.
	for {
		waited := false
		for _, acc := range sc.blockAccs {
			obj := acc.obj
			if !acc.intentWrite || (!obj.drainPending && obj.drainUntil <= p.Now()) {
				continue
			}
			if len(sc.accs) > 0 {
				return true
			}
			waited = true
			if obj.drainPending {
				obj.stateQ.Wait(p)
			} else {
				p.Sleep(sim.Duration(obj.drainUntil - p.Now()))
			}
		}
		if !waited {
			break
		}
	}
	// Pass 3: register the reference counts (§5.1).
	for _, acc := range sc.blockAccs {
		if acc.intentWrite {
			acc.obj.writers++
		} else {
			acc.obj.readers++
		}
		acc.registered = true
		sc.accs = append(sc.accs, acc)
	}
	return false
}

// sortAccs orders accesses by (TableID, Key). The order is total
// (duplicate records panic in prepare), so a plain insertion sort is
// equivalent to the previous sort.Slice and avoids its closure and
// interface boxing on a path taken once per block.
func sortAccs(accs []*access) {
	for i := 1; i < len(accs); i++ {
		a := accs[i]
		j := i - 1
		for j >= 0 && accLess(a, accs[j]) {
			accs[j+1] = accs[j]
			j--
		}
		accs[j+1] = a
	}
}

func accLess(a, b *access) bool {
	if a.rk.table != b.rk.table {
		return a.rk.table < b.rk.table
	}
	return a.rk.key < b.rk.key
}

// getOrCreate returns the record's local object, creating it (and
// resolving its pool address) on first access.
func (c *Coordinator) getOrCreate(p *sim.Proc, rk recKey, lay *layout.Record) *object {
	if obj, ok := c.cn.objs[rk]; ok {
		return obj
	}
	db := c.cn.db
	primary := db.Pool.PrimaryOf(rk.table, rk.key)
	off, err := db.ResolveAddr(p, c.cn.cache, c.qps.Get(primary.Region), rk.table, rk.key)
	if err != nil {
		panic(err)
	}
	obj := newObject(rk.table, rk.key, off, lay, primary)
	c.cn.objs[rk] = obj
	return obj
}

// admit performs cache admission (§5.1) for the block's accesses: it
// fetches uncached records and acquires the missing remote cell locks,
// batching everything per memory node into one round-trip. Only one
// coordinator admits a given record at a time; others wait.
func (c *Coordinator) admit(p *sim.Proc, sc *execScratch, blockAccs []*access) (engine.AbortReason, bool) {
	db := c.cn.db
	opts := c.cn.sys.opts
	tries := 0
	for {
		var waitObj *object
		sc.fetches, sc.locks = sc.fetches[:0], sc.locks[:0]
		for _, acc := range blockAccs {
			obj := acc.obj
			if obj.flushing || obj.releaseReq > 0 {
				waitObj = obj
				break
			}
			if obj.admitting {
				// Readers with an admitted base proceed against it —
				// commit-time validation handles staleness — instead
				// of serializing behind the in-flight refresh. Lock
				// acquirers and cold readers need the admission slot.
				if !obj.admitted || (acc.intentWrite &&
					c.cn.sys.lockMaskFor(acc.lay, acc.op)&^obj.remoteLocks != 0) {
					waitObj = obj
					break
				}
				continue
			}
			if acc.intentWrite && obj.drainPending {
				// A forced release window is pending on this record;
				// abort rather than wait — waiting here while holding
				// other records' references can deadlock compute-node
				// pipelines against each other.
				return engine.AbortWait, false
			}
			if !obj.admitted {
				sc.fetches = append(sc.fetches, acc)
			}
			if want := c.cn.sys.lockMaskFor(acc.lay, acc.op) &^ obj.remoteLocks; acc.intentWrite && want != 0 {
				sc.locks = append(sc.locks, acc)
			}
		}
		if waitObj != nil {
			waitObj.stateQ.SetName(fmt.Sprintf("obj %d/%d admitting=%v flushing=%v locks=%b w=%d r=%d",
				waitObj.table, waitObj.key, waitObj.admitting, waitObj.flushing, waitObj.remoteLocks, waitObj.writers, waitObj.readers))
			// The admission/flush blocker is whichever coordinator is
			// inside the object's critical section; attribute the wait
			// to it when known.
			holder := waitObj.whyOwner
			t0 := p.Now()
			waitObj.stateQ.Wait(p)
			db.Why.LocalWait(p, waitObj.table, waitObj.key, holder, p.Now().Sub(t0))
			db.Flight.Wait(p, holder, p.Now().Sub(t0))
			continue
		}
		if len(sc.fetches) == 0 && len(sc.locks) == 0 {
			// Everything cached and locked; register conflict-tracker
			// coverage for the write intents that piggybacked, and
			// count the piggyback streaks that gate lock retention.
			for _, acc := range blockAccs {
				c.track(acc)
				obj := acc.obj
				if acc.intentWrite && !acc.streakCounted {
					acc.streakCounted = true
					// streak > 0 means an earlier local txn already
					// counted against these locks: this one piggybacks.
					if obj.streak > 0 && obj.remoteLocks != 0 {
						db.Trace.LockPiggyback(p.Now(), trace.SpanOf(p), obj.table, obj.key, obj.remoteLocks)
						db.Met.Piggybacks.Inc()
					}
					obj.streak++
					if k := opts.MaxPiggyback; k > 0 && obj.streak >= k && obj.remoteLocks != 0 {
						obj.drainPending = true
					}
				}
			}
			return engine.AbortNone, false
		}

		// Claim and fetch/lock in one PostMulti. Every lock
		// acquisition pairs the masked-CAS with a READ (Table 2's
		// masked-CAS+READ): when the object was already cached, the
		// read refreshes the base values of the cells that were not
		// locked until now — their cached values may predate another
		// compute node's commits, and locked cells skip validation.
		sc.pend = sc.pend[:0]
		sc.bat.Begin()
		add := func(acc *access) int {
			obj := acc.obj
			for i := range sc.pend {
				if sc.pend[i].obj == obj {
					return i
				}
			}
			sc.pend = append(sc.pend, admitPend{obj: obj, acc: acc, casIdx: -1, readIdx: -1})
			obj.admitting = true
			return len(sc.pend) - 1
		}
		for _, acc := range sc.locks {
			pi := add(acc)
			obj := acc.obj
			bits := c.cn.sys.lockMaskFor(acc.lay, acc.op) &^ obj.remoteLocks
			bi := sc.bat.Batch(obj.primary.Region)
			ci := sc.bat.Append(bi, rdma.Op{
				Kind: rdma.OpMaskedCAS,
				Off:  obj.off + layout.OffLock,
				Swap: bits, Mask: bits,
			})
			pd := &sc.pend[pi]
			pd.preLocks = obj.remoteLocks
			pd.bits = bits
			pd.casIdx = ci
		}
		for _, acc := range sc.fetches {
			pi := add(acc)
			sc.pend[pi].preLocks = acc.obj.remoteLocks
		}
		for i := range sc.pend {
			pd := &sc.pend[i]
			bi := sc.bat.Batch(pd.obj.primary.Region)
			pd.readIdx = sc.bat.Append(bi, rdma.Op{
				Kind: rdma.OpRead,
				Off:  pd.obj.off,
				Len:  pd.acc.lay.Size(),
			})
		}
		results, err := rdma.PostMulti(p, sc.bat.Batches())
		if err != nil {
			panic(err)
		}
		var conflictMask uint64
		conflict := false
		for i := range sc.pend {
			pd := &sc.pend[i]
			obj := pd.obj
			bi := sc.bat.Lookup(obj.primary.Region)
			if pd.casIdx >= 0 {
				if results[bi][pd.casIdx].OK {
					obj.remoteLocks |= pd.bits
					obj.streak = 0 // fresh acquisition opens a new window
					db.Trace.LockAcquire(p.Now(), trace.SpanOf(p), obj.table, obj.key, pd.bits)
					db.Why.OnLock(p, obj.table, obj.key, pd.bits)
					db.Met.LockAcquires.Inc()
				} else {
					conflict = true
					conflictMask |= db.Tracker.HolderCells(obj.table, obj.key)
					db.Trace.Conflict(p.Now(), trace.SpanOf(p), obj.table, obj.key, pd.bits)
					db.Why.LockFail(p, obj.table, obj.key, pd.bits)
					db.Met.LockConflicts.Inc()
				}
			}
			if pd.readIdx >= 0 {
				h, vals, vers := decodeRecord(pd.acc.lay, results[bi][pd.readIdx].Data)
				readMask := layout.LockMask(pd.acc.op.ReadCells) &^ obj.remoteLocks
				switch {
				case h.Lock&layout.DeleteMask != 0:
					obj.admitting = false
					obj.stateQ.WakeAll()
					return engine.AbortValidation, false
				case !snapshotConsistent(h, vers, readMask, obj.remoteLocks):
					// Read cells locked by another compute node, or a
					// torn snapshot (§4.3): back off and refetch. The
					// object must be marked unadmitted — a lock CAS in
					// this very batch may have succeeded, and leaving
					// its cells with the pre-lock base would let a
					// writer read stale data without validation.
					obj.admitted = false
					conflict = true
					conflictMask |= db.Tracker.HolderCells(obj.table, obj.key)
					db.Trace.Conflict(p.Now(), trace.SpanOf(p), obj.table, obj.key, readMask)
					db.Why.LockFail(p, obj.table, obj.key, readMask)
					db.Met.LockConflicts.Inc()
				case !obj.admitted:
					copy(obj.epochs, h.EN[:obj.lay.NumCells()])
					obj.base = vals
					obj.baseVer = vers
					obj.admitted = true
					obj.firstFetch = p.Now()
				default:
					// Refresh the base of cells this compute node did
					// not hold locked: their cached values may predate
					// other nodes' commits. Locked cells (which is
					// where local versions can exist) keep the local
					// view.
					for cell := 0; cell < obj.lay.NumCells(); cell++ {
						if pd.preLocks&(1<<uint(cell)) != 0 {
							continue
						}
						obj.base[cell] = vals[cell]
						obj.baseVer[cell] = vers[cell]
						obj.epochs[cell] = h.EN[cell]
					}
					obj.firstFetch = p.Now()
				}
			}
			obj.admitting = false
			obj.stateQ.WakeAll()
		}
		if !conflict {
			continue // reloop to verify nothing else is missing
		}
		tries++
		if tries > opts.LockRetries {
			var myMask uint64
			for _, acc := range blockAccs {
				myMask |= accessMaskFor(acc.op)
			}
			return engine.AbortLockFail, engine.IsFalseConflict(myMask, conflictMask)
		}
		back := opts.LockBackoff + sim.Duration(p.Rand().Int63n(int64(opts.LockBackoff)))
		p.Sleep(back)
		db.Flight.Backoff(p, back)
	}
}

// track registers the access's cell coverage with the conflict
// tracker (instrumentation only).
func (c *Coordinator) track(acc *access) {
	if acc.tracked || !acc.intentWrite {
		return
	}
	acc.tracked = true
	c.cn.db.Tracker.OnLock(acc.rk.table, acc.rk.key, accessMaskFor(acc.op))
}

// execOp runs one op against the record cache under the block's local
// locks: reads observe the newest live version (or the base value),
// writes append versions tagged with TS_exec, and reverse orderings
// abort (§5.2).
func (c *Coordinator) execOp(p *sim.Proc, t *engine.Txn, me *txnState, acc *access, deps *depSet) engine.AbortReason {
	obj := acc.obj
	op := acc.op

	myLocks := c.cn.sys.lockMaskFor(acc.lay, op)
	read := acc.readVals[:0]
	for _, cell := range op.ReadCells {
		v, val := obj.latest(cell)
		cs := &obj.cells[cell]
		if v != nil && v.txn != me {
			if v.tsExec > me.tsExec {
				return engine.AbortReverse
			}
			if v.txn.status == txnPending {
				deps.add(v.txn)
			}
		}
		if myLocks&(1<<uint(cell)) == 0 {
			// Not covered by this transaction's own write locks: the
			// cell joins the commit-time validation set (§6).
			ck := valCheck{cell: cell, live: v != nil, readV: v}
			if v == nil {
				ck.en = obj.epochs[cell]
				ck.ts = obj.baseVer[cell].TS
			}
			acc.checks = append(acc.checks, ck)
		}
		if me.tsExec > cs.maxReadTS {
			cs.maxReadTS = me.tsExec
		}
		read = append(read, val)
	}
	acc.readVals = read

	written := op.Hook(t.State, read)
	if len(written) != len(op.WriteCells) {
		panic(fmt.Sprintf("core: hook returned %d values for %d write cells", len(written), len(op.WriteCells)))
	}
	acc.writeVals = written

	for i, cell := range op.WriteCells {
		if len(written[i]) != acc.lay.CellSize(cell) {
			panic("core: hook wrote wrong cell size")
		}
		cs := &obj.cells[cell]
		if cs.maxReadTS > me.tsExec {
			// A later transaction already read this cell; our write
			// arrives too late in TS_exec order (Fig 10, write side).
			return engine.AbortReverse
		}
		v := cs.newestLive()
		switch {
		case v != nil && v.txn == me:
			v.value = written[i]
			continue
		case v != nil:
			if v.tsExec > me.tsExec {
				return engine.AbortReverse
			}
			if v.txn.status == txnPending {
				deps.add(v.txn)
			}
		}
		obj.append(cell, &version{txn: me, tsExec: me.tsExec, value: written[i]})
	}
	return engine.AbortNone
}

// validateLocal is the commit-time supersede check: for every read
// cell, the value observed must still be the newest committed state of
// the record cache. A local writer that committed after the read (and
// thus holds an earlier commit timestamp than this transaction is
// about to draw) supersedes it. It runs with no yield between it and
// the TSO draw, so the outcome is exact.
func (c *Coordinator) validateLocal(accs []*access) bool {
	for _, acc := range accs {
		for _, ck := range acc.checks {
			cs := &acc.obj.cells[ck.cell]
			if ck.readV == nil {
				// Base read: a fold moved the base, or a committed
				// version now shadows it.
				if acc.obj.baseVer[ck.cell].TS != ck.ts {
					return false
				}
				for _, v := range cs.versions {
					if v.txn.tsAssigned != 0 {
						return false
					}
				}
				continue
			}
			// Version read: the creator resolved before this point
			// (dependency wait). The version must still be the newest
			// committed one — no committed successor in the list, and
			// if it was folded, it must be what the base now holds.
			if ck.readV.txn.status != txnCommitted {
				return false
			}
			inList := false
			for _, v := range cs.versions {
				if v == ck.readV {
					inList = true
					break
				}
			}
			if inList {
				// Committed successors after readV supersede the read.
				past := false
				for _, v := range cs.versions {
					if v == ck.readV {
						past = true
						continue
					}
					if past && v.txn.tsAssigned != 0 {
						return false
					}
				}
			} else {
				// Folded: the base must hold exactly this version and
				// no committed successor may sit in the list.
				if acc.obj.baseVer[ck.cell].TS != ck.readV.txn.tsCommit {
					return false
				}
				for _, v := range cs.versions {
					if v.txn.tsAssigned != 0 {
						return false
					}
				}
			}
		}
	}
	return true
}

// validateRemote checks every base read of an unlocked cell against
// the memory pool: one header READ per record, batched per node. Past
// the EN threshold it reads whole records and compares commit
// timestamps instead (§4.2).
func (c *Coordinator) validateRemote(p *sim.Proc, sc *execScratch, accs []*access, attemptStart sim.Time) (engine.AbortReason, bool) {
	db := c.cn.db
	fallback := p.Now().Sub(attemptStart) > c.cn.sys.opts.ENThreshold
	sc.bat.Begin()
	for i := range sc.batchAccs {
		sc.batchAccs[i] = sc.batchAccs[i][:0]
	}
	for _, acc := range accs {
		if len(acc.checks) == 0 {
			continue
		}
		obj := acc.obj
		bi := sc.bat.Batch(obj.primary.Region)
		for bi >= len(sc.batchAccs) {
			sc.batchAccs = append(sc.batchAccs, nil)
		}
		n := layout.HeaderSize
		if fallback {
			n = acc.lay.Size()
		}
		sc.bat.Append(bi, rdma.Op{Kind: rdma.OpRead, Off: obj.off, Len: n})
		sc.batchAccs[bi] = append(sc.batchAccs[bi], acc)
	}
	batches := sc.bat.Batches()
	if len(batches) == 0 {
		return engine.AbortNone, false
	}
	results, err := rdma.PostMulti(p, batches)
	if err != nil {
		panic(err)
	}
	for bi := range batches {
		for ri, acc := range sc.batchAccs[bi] {
			data := results[bi][ri].Data
			h := layout.DecodeHeader(data)
			obj := acc.obj
			otherLocks := h.Lock &^ obj.remoteLocks &^ layout.DeleteMask
			for _, ck := range acc.checks {
				wantEN, wantTS := ck.en, ck.ts
				if ck.live {
					wantEN, wantTS = obj.epochs[ck.cell], obj.baseVer[ck.cell].TS
				}
				bit := uint64(1) << uint(ck.cell)
				ok := otherLocks&bit == 0
				if ok {
					if fallback {
						ok = layout.GetCellVersion(data[acc.lay.CellOff(ck.cell):]).TS == wantTS
					} else {
						ok = h.EN[ck.cell] == wantEN
					}
				}
				if ok {
					continue
				}
				// Force a refetch only when the cache itself is behind
				// the pool — a reader whose own capture is outdated
				// must abort, but invalidating an already-refreshed
				// shared object would put every local accessor into a
				// refetch storm.
				if h.EN[ck.cell] != obj.epochs[ck.cell] &&
					p.Now().Sub(obj.firstFetch) > c.cn.sys.opts.FetchTTL {
					obj.admitted = false
				}
				conflicting := db.Tracker.ChangedSince(acc.rk.table, acc.key, wantTS)
				if otherLocks&bit != 0 {
					conflicting |= db.Tracker.HolderCells(acc.rk.table, acc.key)
				}
				myMask := accessMaskFor(acc.op)
				db.Trace.Conflict(p.Now(), trace.SpanOf(p), acc.rk.table, acc.key, bit)
				db.Why.ValidationFail(p, acc.rk.table, acc.key, bit, wantTS)
				db.Met.LockConflicts.Inc()
				return engine.AbortValidation, engine.IsFalseConflict(myMask, conflicting)
			}
		}
	}
	return engine.AbortNone, false
}

// writeRedoLog persists the dependency-tracking redo-log entry to the
// coordinator's log replicas in one round-trip (§6). Transactions that
// wrote nothing skip the log.
func (c *Coordinator) writeRedoLog(p *sim.Proc, sc *execScratch, me *txnState, ts uint64, accs []*access, deps *depSet) {
	nr := 0
	for _, acc := range accs {
		if len(acc.op.WriteCells) == 0 {
			continue
		}
		if nr == len(sc.recs) {
			sc.recs = append(sc.recs, logRecord{})
		}
		r := &sc.recs[nr]
		nr++
		r.Table, r.Key, r.Mask = acc.rk.table, acc.key, layout.LockMask(acc.op.WriteCells)
		r.Vals = r.Vals[:0]
		// Values must be in ascending cell order to match the mask.
		sc.idx = sc.idx[:0]
		for i := range acc.op.WriteCells {
			sc.idx = append(sc.idx, i)
		}
		sortByCell(sc.idx, acc.op.WriteCells)
		for _, i := range sc.idx {
			r.Vals = append(r.Vals, acc.writeVals[i])
		}
	}
	if nr == 0 {
		return
	}
	sc.depIDs = sc.depIDs[:0]
	for _, d := range deps.list {
		sc.depIDs = append(sc.depIDs, d.id)
	}
	entry := appendLogEntry(sc.logBuf[:0], me.id, ts, sc.depIDs, sc.recs[:nr])
	sc.logBuf = entry
	off := c.log.Reserve(len(entry))
	// Cross-shard commits pay a prepare round first: the entry lands
	// on every other participating group's log mirrors before the
	// home group's decision write.
	if parts := c.writeShardsAccs(accs); parts.Beyond(c.home) {
		engine.PrepareCrossShard(p, c.cn.db, c.qps, c.logN, c.home, parts, off, entry)
	}
	c.postLog(p, sc, off, entry)
}

// postLog writes one encoded entry to every log replica in one
// round-trip, through the scratch's persistent batch slice.
func (c *Coordinator) postLog(p *sim.Proc, sc *execScratch, off uint64, entry []byte) {
	if cap(sc.logBatches) < len(c.logN) {
		sc.logBatches = make([]rdma.Batch, len(c.logN))
	}
	sc.logBatches = sc.logBatches[:len(c.logN)]
	for i, n := range c.logN {
		sc.logBatches[i].QP = c.qps.Get(n.Region)
		sc.logBatches[i].Ops = append(sc.logBatches[i].Ops[:0], rdma.Op{Kind: rdma.OpWrite, Off: off, Data: entry})
	}
	if _, err := rdma.PostMulti(p, sc.logBatches); err != nil {
		panic(err)
	}
}

// sortByCell insertion-sorts idx so cells[idx] ascends; cell lists
// are tiny and duplicate-free.
func sortByCell(idx []int, cells []int) {
	for i := 1; i < len(idx); i++ {
		x := idx[i]
		j := i - 1
		for j >= 0 && cells[x] < cells[idx[j]] {
			idx[j+1] = idx[j]
			j--
		}
		idx[j+1] = x
	}
}

// applyRelease ends the transaction's participation in its objects:
// reference counts drop, the last writer of each object writes the
// newest committed cell values back (last-writer-wins, §6), and the
// last reference releases the remote locks and destroys the object.
func (c *Coordinator) applyRelease(p *sim.Proc, sc *execScratch, accs []*access) {
	db := c.cn.db
	for _, acc := range accs {
		if !acc.registered {
			continue
		}
		acc.registered = false
		if acc.intentWrite {
			acc.obj.writers--
		} else {
			acc.obj.readers--
		}
		if acc.tracked {
			acc.tracked = false
			db.Tracker.OnUnlock(acc.rk.table, acc.rk.key, accessMaskFor(acc.op))
		}
	}

	c.cn.scanGen++
	g := c.cn.scanGen
	objs := sc.objs[:0]
	for _, acc := range accs {
		if acc.obj.scanGen != g {
			acc.obj.scanGen = g
			objs = append(objs, acc.obj)
		}
	}
	sc.objs = objs
	// Triage: most objects need nothing from this transaction (a later
	// writer will flush, or the object is unlocked and still
	// referenced) and must not wait behind hot-object admission
	// traffic — that tax would serialize the whole read path.
	work := sc.work[:0]
	for _, obj := range objs {
		if obj.writers > 0 {
			continue // a later writer will flush and release
		}
		if obj.remoteLocks == 0 {
			if obj.refTotal() == 0 && !obj.flushing && !obj.admitting {
				delete(c.cn.objs, obj.rkKey())
			}
			continue
		}
		work = append(work, obj)
	}
	sc.work = work
	if len(work) == 0 {
		return
	}
	// Wait until none of the remaining objects is mid-admission or
	// mid-flush (each bounded by one round-trip) before claiming any:
	// skipping busy objects would leave the last writer's release —
	// and a pending drain — to chance under heavy reader refetch
	// traffic, while claiming-then-waiting would let two releasing
	// coordinators deadlock on each other's claims. releaseReq keeps
	// new admissions from barging in ahead of this release.
	for _, obj := range work {
		obj.releaseReq++
	}
	for {
		busy := false
		for _, obj := range work {
			if obj.admitting || obj.flushing {
				busy = true
				holder := obj.whyOwner
				t0 := p.Now()
				obj.stateQ.Wait(p)
				db.Why.LocalWait(p, obj.table, obj.key, holder, p.Now().Sub(t0))
				db.Flight.Wait(p, holder, p.Now().Sub(t0))
				break
			}
		}
		if !busy {
			break
		}
	}
	for _, obj := range work {
		obj.releaseReq--
	}
	defer func() {
		for _, obj := range work {
			if obj.releaseReq == 0 && !obj.flushing && !obj.admitting {
				obj.stateQ.WakeAll()
			}
		}
	}()
	sc.bat.Begin()
	sc.fins = sc.fins[:0]
	for _, obj := range work {
		if obj.writers > 0 {
			continue // a later writer registered meanwhile; it flushes
		}
		if obj.remoteLocks == 0 {
			if obj.refTotal() == 0 {
				delete(c.cn.objs, obj.rkKey())
			}
			continue
		}
		// writers == 0 with locks held: this transaction is the last
		// writer (or a reader draining a locked object). Per §6 the
		// last writer writes the newest committed values back and
		// releases the locks, even while readers remain — their reads
		// validate against the epoch numbers at commit.
		obj.flushing = true
		sc.fins = append(sc.fins, fin{obj: obj, plans: obj.collectFlush(), release: true, unlock: obj.remoteLocks})
		c.buildFlushOps(sc, &sc.fins[len(sc.fins)-1])
	}
	if batches := sc.bat.Batches(); len(batches) > 0 {
		if _, err := rdma.PostMulti(p, batches); err != nil {
			panic(err)
		}
	}
	for i := range sc.fins {
		f := &sc.fins[i]
		obj := f.obj
		for _, plan := range f.plans {
			db.Tracker.OnUpdate(obj.table, obj.key, plan.ts, 1<<uint(plan.cell))
			db.Why.OnUpdate(plan.why, obj.table, obj.key, plan.ts, 1<<uint(plan.cell))
			// A fold of more than 65536 epochs — or one landing exactly
			// on the wrap — silently reuses epoch numbers; validation
			// correctness then rests on the EN-threshold fallback, so
			// the rollover is worth a trace event.
			if before := plan.en - uint16(plan.bumps); plan.en < before {
				db.Trace.ENOverflow(p.Now(), trace.SpanOf(p), obj.table, obj.key, plan.cell)
			}
		}
		db.Trace.LockRelease(p.Now(), trace.SpanOf(p), obj.table, obj.key, obj.remoteLocks)
		db.Why.OnUnlock(obj.table, obj.key, obj.remoteLocks)
		obj.remoteLocks = 0
		obj.streak = 0
		if obj.drainPending {
			obj.drainPending = false
			obj.drainUntil = p.Now().Add(c.cn.sys.opts.DrainGrace)
		}
		obj.flushing = false
		obj.stateQ.WakeAll()
		if obj.refTotal() == 0 {
			delete(c.cn.objs, obj.rkKey())
		}
	}
}

func (o *object) rkKey() recKey { return recKey{o.table, o.key} }

// fin is one object's pending write-back during applyRelease.
type fin struct {
	obj     *object
	plans   []flushPlan
	release bool
	unlock  uint64
}

// buildFlushOps emits the last-writer write-back for one object into
// the scratch batcher: each committed cell's version word + value, its
// header epoch number, and (when the object is quiescent) the unlock
// masked-CAS, ordered within the round-trip. Backup replicas receive
// the data writes; the lock lives on the primary.
func (c *Coordinator) buildFlushOps(sc *execScratch, f *fin) {
	obj := f.obj
	db := c.cn.db
	for _, n := range db.Pool.ReplicaNodes(obj.table, obj.key) {
		release := f.release && n == obj.primary && f.unlock != 0
		if len(f.plans) > 0 || release {
			bi := sc.bat.Batch(n.Region)
			for _, plan := range f.plans {
				slot := sc.bytes(layout.CellVersionSize + len(plan.value))
				layout.PutCellVersion(slot, layout.CellVersion{EN: plan.en, TS: plan.ts})
				copy(slot[layout.CellVersionSize:], plan.value)
				enb := sc.bytes(2)
				enb[0] = byte(plan.en)
				enb[1] = byte(plan.en >> 8)
				sc.bat.Append(bi, rdma.Op{Kind: rdma.OpWrite, Off: obj.off + uint64(obj.lay.CellOff(plan.cell)), Data: slot})
				sc.bat.Append(bi, rdma.Op{Kind: rdma.OpWrite, Off: obj.off + uint64(obj.lay.ENOff(plan.cell)), Data: enb})
			}
			if release {
				sc.bat.Append(bi, rdma.Op{
					Kind:    rdma.OpMaskedCAS,
					Off:     obj.off + layout.OffLock,
					Compare: f.unlock,
					Swap:    0,
					Mask:    f.unlock,
				})
			}
		}
		if len(f.plans) == 0 {
			// Pure unlock: nothing to write on backups.
			break
		}
	}
}

// recordHistory feeds the committed transaction into the history
// checker.
func (c *Coordinator) recordHistory(t *engine.Txn, accs []*access, ts uint64) {
	h := c.cn.db.History
	if h == nil || !h.On {
		return
	}
	ht := engine.HTxn{TS: ts, Label: fmt.Sprintf("%s cn%d", t.Label, c.cn.id)}
	for _, acc := range accs {
		for i, cell := range acc.op.ReadCells {
			ht.Reads = append(ht.Reads, engine.HRead{
				Cell: engine.CellID{Table: acc.rk.table, Key: acc.key, Cell: cell},
				Hash: engine.HashValue(acc.readVals[i]),
			})
		}
		for i, cell := range acc.op.WriteCells {
			ht.Writes = append(ht.Writes, engine.HWrite{
				Cell: engine.CellID{Table: acc.rk.table, Key: acc.key, Cell: cell},
				Hash: engine.HashValue(acc.writeVals[i]),
			})
		}
	}
	h.Commit(ht)
}
