package core

import (
	"fmt"

	"crest/internal/layout"
	"crest/internal/rdma"
	"crest/internal/sim"
)

// InsertRow inserts a whole row at runtime (§4.4: "CREST inserts ...
// entire rows by acquiring all cell locks via an RDMA CAS"): it claims
// a fresh heap slot, writes the record with every cell locked, then
// publishes the key in the hash index of every memory node and
// releases the locks.
func (c *Coordinator) InsertRow(p *sim.Proc, table layout.TableID, key layout.Key, cells [][]byte) error {
	db := c.cn.db
	lay := c.cn.sys.layouts[table]
	if lay == nil {
		return fmt.Errorf("core: unknown table %d", table)
	}
	if len(cells) != lay.NumCells() {
		return fmt.Errorf("core: %d cells for table with %d", len(cells), lay.NumCells())
	}
	tab := db.Table(table)
	if _, exists := tab.AddrOf(key); exists {
		return fmt.Errorf("core: key %d already present in table %d", key, table)
	}
	off, err := tab.ClaimSlot(key)
	if err != nil {
		return err
	}

	// Build the record image: cells at epoch 1 so readers admitted
	// mid-insert fail validation. The primary's header carries every
	// cell locked until the index entry is published; backups are
	// never locked.
	buf := make([]byte, lay.Size())
	mask := layout.AllCellsMask(lay.NumCells())
	hdr := layout.Header{Key: key, TableID: table}
	for i, v := range cells {
		if len(v) != lay.CellSize(i) {
			return fmt.Errorf("core: cell %d size %d, schema wants %d", i, len(v), lay.CellSize(i))
		}
		hdr.EN[i] = 1
		layout.PutCellVersion(buf[lay.CellOff(i):], layout.CellVersion{EN: 1, TS: db.TSO.Next()})
		copy(buf[lay.CellValueOff(i):], v)
	}

	// Write the record to every replica in one round-trip.
	primaryNode := db.Pool.PrimaryOf(table, key)
	var batches []rdma.Batch
	for _, n := range db.Pool.ReplicaNodes(table, key) {
		hdr.Lock = 0
		if n == primaryNode {
			hdr.Lock = mask
		}
		layout.EncodeHeader(buf, hdr)
		batches = append(batches, rdma.Batch{
			QP:  c.qps.Get(n.Region),
			Ops: []rdma.Op{{Kind: rdma.OpWrite, Off: off, Data: append([]byte(nil), buf...)}},
		})
	}
	if _, err := rdma.PostMulti(p, batches); err != nil {
		return err
	}
	// Publish in the mirrored index, then unlock.
	if err := tab.Index.InsertAll(p, db.Fabric, db.Pool, key, off); err != nil {
		return err
	}
	c.cn.cache.Put(table, key, off)
	primary := db.Pool.PrimaryOf(table, key)
	if _, _, err := c.qps.Get(primary.Region).MaskedCAS(p, off+layout.OffLock, mask, 0, mask); err != nil {
		return err
	}
	return nil
}

// DeleteRow logically deletes a row (§4.4): it acquires every cell
// lock, sets the spare delete bit, and tombstones the index entry on
// every node. Readers that fetch the record afterwards observe the
// delete bit and abort.
func (c *Coordinator) DeleteRow(p *sim.Proc, table layout.TableID, key layout.Key) error {
	db := c.cn.db
	lay := c.cn.sys.layouts[table]
	if lay == nil {
		return fmt.Errorf("core: unknown table %d", table)
	}
	tab := db.Table(table)
	off, exists := tab.AddrOf(key)
	if !exists {
		return fmt.Errorf("core: key %d not in table %d", key, table)
	}
	mask := layout.AllCellsMask(lay.NumCells())
	primary := db.Pool.PrimaryOf(table, key)
	qp := c.qps.Get(primary.Region)

	// Acquire every cell lock (retry briefly like any other writer).
	opts := c.cn.sys.opts
	for tries := 0; ; tries++ {
		_, ok, err := qp.MaskedCAS(p, off+layout.OffLock, 0, mask, mask)
		if err != nil {
			return err
		}
		if ok {
			break
		}
		if tries >= opts.LockRetries {
			return fmt.Errorf("core: delete of contended row %d/%d timed out", table, key)
		}
		p.Sleep(opts.LockBackoff)
		db.Flight.Backoff(p, opts.LockBackoff)
	}
	// Mark deleted on every replica: the delete bit goes up, the cell
	// locks go down, in one masked operation per node.
	var batches []rdma.Batch
	for _, n := range db.Pool.ReplicaNodes(table, key) {
		batches = append(batches, rdma.Batch{
			QP: c.qps.Get(n.Region),
			Ops: []rdma.Op{{
				Kind:    rdma.OpMaskedCAS,
				Off:     off + layout.OffLock,
				Compare: lockStateFor(n == primary, mask),
				Swap:    layout.DeleteMask,
				Mask:    mask | layout.DeleteMask,
			}},
		})
	}
	if _, err := rdma.PostMulti(p, batches); err != nil {
		return err
	}
	// Tombstone the mirrored index on the owning shard group (only its
	// nodes carry the entry).
	for _, n := range db.Pool.GroupNodes(db.Pool.ShardOf(table, key)) {
		if err := tab.Index.Delete(p, c.qps.Get(n.Region), key); err != nil {
			return err
		}
	}
	// Evict any local object so the cache does not serve the ghost.
	delete(c.cn.objs, recKey{table, key})
	return nil
}

// lockStateFor is the expected lock word during delete: the primary
// holds our all-cells lock, backups were never locked.
func lockStateFor(isPrimary bool, mask uint64) uint64 {
	if isPrimary {
		return mask
	}
	return 0
}
