package core

import (
	"fmt"

	"crest/internal/causality"
	"crest/internal/engine"
	"crest/internal/layout"
	"crest/internal/memnode"
	"crest/internal/rdma"
	"crest/internal/sim"
	"crest/internal/trace"
)

// executeDirect is the strict (non-localized) execution path used by
// the factor-analysis Base and +Cell configurations (§8.4, Exp#5): no
// record cache, locks held from fetch to commit, every read validated
// remotely. With CellLevel on it still locks and validates at cell
// granularity via the CREST record structure.
func (c *Coordinator) executeDirect(p *sim.Proc, t *engine.Txn) engine.Attempt {
	db := c.cn.db
	at := engine.BeginAttempt(db, p, c.gid, c.home, t)
	sc := c.getScratch()
	defer c.putScratch(sc)

	for bi := range t.Blocks {
		blk := &t.Blocks[bi]
		blockWs := c.dPrepare(p, t, blk, sc)
		sc.dWs = append(sc.dWs, blockWs...)
		if db.Pool.Shards() > 1 && c.writeShardsDworks(sc.dWs).Beyond(c.home) {
			at.MarkCrossShard()
		}
		at.Phase(trace.PhaseLock)
		reason, falseC := c.dFetch(p, sc, blockWs)
		at.Phase(trace.PhaseExec)
		if reason != engine.AbortNone {
			// Release before Fail: the strict path has always charged
			// abort-time lock release to the phase that failed.
			c.dRelease(p, sc, sc.dWs)
			at.Fail(reason, falseC)
			return at.Done()
		}
		for oi := range blk.Ops {
			op := &blk.Ops[oi]
			w := findDwork(sc.dWs, recKey{op.Table, op.ResolveKey(t.State)})
			c.dApplyOp(p, t, op, w)
		}
	}

	at.Phase(trace.PhaseValidate)
	if reason, falseC := c.dValidate(p, sc, sc.dWs, at.Start()); reason != engine.AbortNone {
		c.dRelease(p, sc, sc.dWs)
		at.Fail(reason, falseC)
		return at.Done()
	}

	at.Phase(trace.PhaseLog)
	ts := db.TSO.Next()
	c.dWriteLog(p, sc, sc.dWs, ts)
	at.Phase(trace.PhaseApply)
	c.dInstall(p, sc, sc.dWs, ts)
	c.dRecord(t, sc.dWs, ts)
	return at.Done()
}

// dwork is the direct path's per-record attempt state.
type dwork struct {
	op        *engine.Op
	key       layout.Key
	rk        recKey
	off       uint64
	lay       *layout.Record
	primary   *memnode.Node
	lockBits  uint64 // remote cell locks held
	vals      [][]byte
	vers      []layout.CellVersion
	hdr       layout.Header
	checks    []valCheck
	tracked   bool
	readVals  [][]byte
	writeVals [][]byte
}

func (w *dwork) table() layout.TableID { return w.lay.Schema.ID }

func (c *Coordinator) dPrepare(p *sim.Proc, t *engine.Txn, blk *engine.Block, sc *execScratch) []*dwork {
	db := c.cn.db
	sc.dBlock = sc.dBlock[:0]
	for oi := range blk.Ops {
		op := &blk.Ops[oi]
		key := op.ResolveKey(t.State)
		rk := recKey{op.Table, key}
		if findDwork(sc.dWs, rk) != nil || findDwork(sc.dBlock, rk) != nil {
			panic(fmt.Sprintf("core: record %v accessed by two ops of one transaction", rk))
		}
		lay := c.cn.sys.layouts[op.Table]
		primary := db.Pool.PrimaryOf(op.Table, key)
		off, err := db.ResolveAddr(p, c.cn.cache, c.qps.Get(primary.Region), op.Table, key)
		if err != nil {
			panic(err)
		}
		w := sc.newDwork()
		w.op, w.key, w.rk, w.off, w.lay, w.primary = op, key, rk, off, lay, primary
		sc.dBlock = append(sc.dBlock, w)
	}
	sortDworks(sc.dBlock)
	return sc.dBlock
}

// sortDworks orders records by (TableID, Key); the order is total
// (duplicates panic in dPrepare), so the insertion sort matches the
// previous sort.Slice byte for byte.
func sortDworks(ws []*dwork) {
	for i := 1; i < len(ws); i++ {
		w := ws[i]
		j := i - 1
		for j >= 0 && dworkLess(w, ws[j]) {
			ws[j+1] = ws[j]
			j--
		}
		ws[j+1] = w
	}
}

func dworkLess(a, b *dwork) bool {
	if a.table() != b.table() {
		return a.table() < b.table()
	}
	return a.key < b.key
}

// dFetch locks and reads the block's records: masked-CAS + READ per
// read-write record, READ per read-only record, all batched per node
// into one round-trip. Inconsistent snapshots and foreign locks on
// read cells trigger bounded refetches (§4.3).
func (c *Coordinator) dFetch(p *sim.Proc, sc *execScratch, ws []*dwork) (engine.AbortReason, bool) {
	if len(ws) == 0 {
		return engine.AbortNone, false
	}
	db := c.cn.db
	opts := c.cn.sys.opts
	todo := append(sc.dTodo[:0], ws...)
	for tries := 0; ; tries++ {
		sc.bat.Begin()
		sc.dSlots = sc.dSlots[:0]
		for _, w := range todo {
			bi := sc.bat.Batch(w.primary.Region)
			sc.dSlots = append(sc.dSlots, dslot{w: w, casIdx: -1})
			s := &sc.dSlots[len(sc.dSlots)-1]
			if want := c.cn.sys.lockMaskFor(w.lay, w.op) &^ w.lockBits; want != 0 {
				s.casIdx = sc.bat.Append(bi, rdma.Op{
					Kind: rdma.OpMaskedCAS,
					Off:  w.off + layout.OffLock,
					Swap: want, Mask: want,
				})
			}
			s.rdIdx = sc.bat.Append(bi, rdma.Op{Kind: rdma.OpRead, Off: w.off, Len: w.lay.Size()})
		}
		results, err := rdma.PostMulti(p, sc.bat.Batches())
		if err != nil {
			panic(err)
		}
		retry := sc.dRetry[:0]
		var conflictMask, myMask uint64
		lockFailed := false
		for i := range sc.dSlots {
			// Every result must be processed before any abort return:
			// a sibling CAS in the same batch may have succeeded and
			// its lock bits must be recorded so the abort path can
			// release them.
			s := &sc.dSlots[i]
			w := s.w
			bi := sc.bat.Lookup(w.primary.Region)
			if s.casIdx >= 0 {
				if results[bi][s.casIdx].OK {
					want := c.cn.sys.lockMaskFor(w.lay, w.op) &^ w.lockBits
					w.lockBits |= want
					db.Tracker.OnLock(w.table(), w.key, accessMaskFor(w.op))
					w.tracked = true
					db.Trace.LockAcquire(p.Now(), trace.SpanOf(p), w.table(), w.key, want)
					db.Why.OnLock(p, w.table(), w.key, want)
					db.Met.LockAcquires.Inc()
				} else {
					// No-wait on write locks: the attempt aborts.
					lockFailed = true
					conflictMask |= db.Tracker.HolderCells(w.table(), w.key)
					myMask |= accessMaskFor(w.op)
					db.Trace.Conflict(p.Now(), trace.SpanOf(p), w.table(), w.key,
						c.cn.sys.lockMaskFor(w.lay, w.op)&^w.lockBits)
					db.Why.LockFail(p, w.table(), w.key, c.cn.sys.lockMaskFor(w.lay, w.op)&^w.lockBits)
					db.Met.LockConflicts.Inc()
					continue
				}
			}
			h, vals, vers := decodeRecord(w.lay, results[bi][s.rdIdx].Data)
			readMask := layout.LockMask(w.op.ReadCells) &^ w.lockBits
			if !snapshotConsistent(h, vers, readMask, w.lockBits) {
				retry = append(retry, w)
				conflictMask |= db.Tracker.HolderCells(w.table(), w.key)
				myMask |= accessMaskFor(w.op)
				db.Trace.Conflict(p.Now(), trace.SpanOf(p), w.table(), w.key, readMask)
				db.Why.LockFail(p, w.table(), w.key, readMask)
				db.Met.LockConflicts.Inc()
				continue
			}
			w.hdr, w.vals, w.vers = h, vals, vers
			for _, cell := range w.op.ReadCells {
				if w.lockBits&(1<<uint(cell)) == 0 {
					w.checks = append(w.checks, valCheck{cell: cell, en: h.EN[cell], ts: vers[cell].TS})
				}
			}
		}
		if lockFailed {
			return engine.AbortLockFail, engine.IsFalseConflict(myMask, conflictMask)
		}
		if len(retry) == 0 {
			return engine.AbortNone, false
		}
		if tries >= opts.LockRetries {
			return engine.AbortLockFail, engine.IsFalseConflict(myMask, conflictMask)
		}
		// Ping-pong the two scratch lists so the next round's retry
		// collection reuses this round's todo backing.
		sc.dTodo, sc.dRetry = retry, todo[:0]
		todo = retry
		back := opts.LockBackoff + sim.Duration(p.Rand().Int63n(int64(opts.LockBackoff)))
		p.Sleep(back)
		db.Flight.Backoff(p, back)
	}
}

func (c *Coordinator) dApplyOp(p *sim.Proc, t *engine.Txn, op *engine.Op, w *dwork) {
	db := c.cn.db
	read := w.readVals[:0]
	for _, cell := range op.ReadCells {
		read = append(read, append([]byte(nil), w.vals[cell]...))
	}
	w.readVals = read
	p.Sleep(db.Cost.OpCost(len(op.ReadCells) + len(op.WriteCells)))
	written := op.Hook(t.State, read)
	if len(written) != len(op.WriteCells) {
		panic(fmt.Sprintf("core: hook returned %d values for %d write cells", len(written), len(op.WriteCells)))
	}
	for i, cell := range op.WriteCells {
		if len(written[i]) != w.lay.CellSize(cell) {
			panic("core: hook wrote wrong cell size")
		}
		w.vals[cell] = written[i]
	}
	w.writeVals = written
}

// dValidate re-reads record headers and compares epoch numbers (or
// full records and commit timestamps past the EN threshold).
func (c *Coordinator) dValidate(p *sim.Proc, sc *execScratch, ws []*dwork, attemptStart sim.Time) (engine.AbortReason, bool) {
	db := c.cn.db
	fallback := p.Now().Sub(attemptStart) > c.cn.sys.opts.ENThreshold
	sc.bat.Begin()
	for i := range sc.dBatchW {
		sc.dBatchW[i] = sc.dBatchW[i][:0]
	}
	for _, w := range ws {
		if len(w.checks) == 0 {
			continue
		}
		bi := sc.bat.Batch(w.primary.Region)
		for bi >= len(sc.dBatchW) {
			sc.dBatchW = append(sc.dBatchW, nil)
		}
		n := layout.HeaderSize
		if fallback {
			n = w.lay.Size()
		}
		sc.bat.Append(bi, rdma.Op{Kind: rdma.OpRead, Off: w.off, Len: n})
		sc.dBatchW[bi] = append(sc.dBatchW[bi], w)
	}
	batches := sc.bat.Batches()
	if len(batches) == 0 {
		return engine.AbortNone, false
	}
	results, err := rdma.PostMulti(p, batches)
	if err != nil {
		panic(err)
	}
	for bi := range batches {
		for ri, w := range sc.dBatchW[bi] {
			data := results[bi][ri].Data
			h := layout.DecodeHeader(data)
			otherLocks := h.Lock &^ w.lockBits &^ layout.DeleteMask
			for _, ck := range w.checks {
				bit := uint64(1) << uint(ck.cell)
				ok := otherLocks&bit == 0
				if ok {
					if fallback {
						ok = layout.GetCellVersion(data[w.lay.CellOff(ck.cell):]).TS == ck.ts
					} else {
						ok = h.EN[ck.cell] == ck.en
					}
				}
				if ok {
					continue
				}
				conflicting := db.Tracker.ChangedSince(w.table(), w.key, ck.ts)
				if otherLocks&bit != 0 {
					conflicting |= db.Tracker.HolderCells(w.table(), w.key)
				}
				db.Trace.Conflict(p.Now(), trace.SpanOf(p), w.table(), w.key, bit)
				db.Why.ValidationFail(p, w.table(), w.key, bit, ck.ts)
				db.Met.LockConflicts.Inc()
				return engine.AbortValidation, engine.IsFalseConflict(accessMaskFor(w.op), conflicting)
			}
		}
	}
	return engine.AbortNone, false
}

// dRelease frees held locks (abort path), batched per node.
func (c *Coordinator) dRelease(p *sim.Proc, sc *execScratch, ws []*dwork) {
	db := c.cn.db
	sc.bat.Begin()
	for _, w := range ws {
		if w.lockBits == 0 {
			continue
		}
		bi := sc.bat.Batch(w.primary.Region)
		sc.bat.Append(bi, rdma.Op{
			Kind:    rdma.OpMaskedCAS,
			Off:     w.off + layout.OffLock,
			Compare: w.lockBits,
			Swap:    0,
			Mask:    w.lockBits,
		})
		if w.tracked {
			db.Tracker.OnUnlock(w.table(), w.key, accessMaskFor(w.op))
			w.tracked = false
		}
		db.Trace.LockRelease(p.Now(), trace.SpanOf(p), w.table(), w.key, w.lockBits)
		db.Why.OnUnlock(w.table(), w.key, w.lockBits)
		w.lockBits = 0
	}
	batches := sc.bat.Batches()
	if len(batches) == 0 {
		return
	}
	if _, err := rdma.PostMulti(p, batches); err != nil {
		panic(err)
	}
}

// dWriteLog persists the redo-log entry (no local dependencies on the
// direct path).
func (c *Coordinator) dWriteLog(p *sim.Proc, sc *execScratch, ws []*dwork, ts uint64) {
	nr := 0
	for _, w := range ws {
		if len(w.op.WriteCells) == 0 {
			continue
		}
		if nr == len(sc.recs) {
			sc.recs = append(sc.recs, logRecord{})
		}
		r := &sc.recs[nr]
		nr++
		r.Table, r.Key, r.Mask = w.table(), w.key, layout.LockMask(w.op.WriteCells)
		r.Vals = r.Vals[:0]
		sc.idx = sc.idx[:0]
		for i := range w.op.WriteCells {
			sc.idx = append(sc.idx, i)
		}
		sortByCell(sc.idx, w.op.WriteCells)
		for _, i := range sc.idx {
			r.Vals = append(r.Vals, w.vals[w.op.WriteCells[i]])
		}
	}
	if nr == 0 {
		return
	}
	entry := appendLogEntry(sc.logBuf[:0], c.gid<<32, ts, nil, sc.recs[:nr])
	sc.logBuf = entry
	off := c.log.Reserve(len(entry))
	// Cross-shard commits pay a prepare round first: the entry lands
	// on every other participating group's log mirrors before the
	// home group's decision write.
	if parts := c.writeShardsDworks(ws); parts.Beyond(c.home) {
		engine.PrepareCrossShard(p, c.cn.db, c.qps, c.logN, c.home, parts, off, entry)
	}
	c.postLog(p, sc, off, entry)
}

// writeShardsDworks returns the shard groups of every written record
// on the direct path.
func (c *Coordinator) writeShardsDworks(ws []*dwork) engine.ShardSet {
	pool := c.cn.db.Pool
	var parts engine.ShardSet
	for _, w := range ws {
		if len(w.op.WriteCells) > 0 {
			parts.Add(pool.ShardOfNode(w.primary.ID))
		}
	}
	return parts
}

// dInstall writes updated cells, bumps their epoch numbers and unlocks
// on every replica, ordered within one round-trip.
func (c *Coordinator) dInstall(p *sim.Proc, sc *execScratch, ws []*dwork, ts uint64) {
	db := c.cn.db
	sc.bat.Begin()
	for _, w := range ws {
		if w.lockBits == 0 {
			continue
		}
		for _, n := range db.Pool.ReplicaNodes(w.table(), w.key) {
			bi := sc.bat.Batch(n.Region)
			for _, cell := range w.op.WriteCells {
				en := w.hdr.EN[cell] + 1
				if en == 0 { // 16-bit epoch wrapped
					db.Trace.ENOverflow(p.Now(), trace.SpanOf(p), w.table(), w.key, cell)
				}
				slot := sc.bytes(layout.CellVersionSize + len(w.vals[cell]))
				layout.PutCellVersion(slot, layout.CellVersion{EN: en, TS: ts})
				copy(slot[layout.CellVersionSize:], w.vals[cell])
				enb := sc.bytes(2)
				enb[0] = byte(en)
				enb[1] = byte(en >> 8)
				sc.bat.Append(bi, rdma.Op{Kind: rdma.OpWrite, Off: w.off + uint64(w.lay.CellOff(cell)), Data: slot})
				sc.bat.Append(bi, rdma.Op{Kind: rdma.OpWrite, Off: w.off + uint64(w.lay.ENOff(cell)), Data: enb})
			}
			if n == w.primary {
				sc.bat.Append(bi, rdma.Op{
					Kind:    rdma.OpMaskedCAS,
					Off:     w.off + layout.OffLock,
					Compare: w.lockBits,
					Swap:    0,
					Mask:    w.lockBits,
				})
			}
		}
	}
	if batches := sc.bat.Batches(); len(batches) > 0 {
		if _, err := rdma.PostMulti(p, batches); err != nil {
			panic(err)
		}
	}
	for _, w := range ws {
		if w.lockBits == 0 {
			continue
		}
		if w.tracked {
			db.Tracker.OnUnlock(w.table(), w.key, accessMaskFor(w.op))
			w.tracked = false
		}
		db.Tracker.OnUpdate(w.table(), w.key, ts, layout.LockMask(w.op.WriteCells))
		db.Why.OnUpdate(causality.IDOf(p), w.table(), w.key, ts, layout.LockMask(w.op.WriteCells))
		db.Trace.LockRelease(p.Now(), trace.SpanOf(p), w.table(), w.key, w.lockBits)
		db.Why.OnUnlock(w.table(), w.key, w.lockBits)
		w.lockBits = 0
	}
}

// dRecord feeds the committed transaction into the history checker.
func (c *Coordinator) dRecord(t *engine.Txn, ws []*dwork, ts uint64) {
	h := c.cn.db.History
	if h == nil || !h.On {
		return
	}
	ht := engine.HTxn{TS: ts, Label: t.Label}
	for _, w := range ws {
		for i, cell := range w.op.ReadCells {
			ht.Reads = append(ht.Reads, engine.HRead{
				Cell: engine.CellID{Table: w.table(), Key: w.key, Cell: cell},
				Hash: engine.HashValue(w.readVals[i]),
			})
		}
		for i, cell := range w.op.WriteCells {
			ht.Writes = append(ht.Writes, engine.HWrite{
				Cell: engine.CellID{Table: w.table(), Key: w.key, Cell: cell},
				Hash: engine.HashValue(w.writeVals[i]),
			})
		}
	}
	h.Commit(ht)
}
