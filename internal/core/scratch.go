package core

import (
	"crest/internal/engine"
	"crest/internal/rdma"
)

// execScratch is the attempt-scoped working memory of one Execute
// call: access/work slabs, batch builders, log encoding buffers and a
// byte arena for write-back payloads. Coordinators are shared by
// round-robin across transaction processes, so attempts on one
// coordinator can overlap in virtual time; each attempt therefore
// checks a scratch out of the coordinator's free list for its whole
// duration and returns it at the end, which keeps the steady-state
// hot path allocation-free without any cross-attempt aliasing.
//
// Nothing allocated from a scratch may outlive the attempt. Values
// that escape the attempt — txnState, version, object contents, log
// bytes in the memory pool — are allocated normally.
type execScratch struct {
	bat *engine.Batcher

	// localized path
	accSlab   []access
	accN      int
	accs      []*access
	blockAccs []*access
	lockOrder []*access
	deps      depSet
	pend      []admitPend
	fetches   []*access
	locks     []*access
	batchAccs [][]*access
	objs      []*object
	work      []*object
	fins      []fin

	// direct path
	dSlab   []dwork
	dN      int
	dWs     []*dwork
	dBlock  []*dwork
	dTodo   []*dwork
	dRetry  []*dwork
	dSlots  []dslot
	dBatchW [][]*dwork

	// redo log and write-back
	recs       []logRecord
	depIDs     []uint64
	idx        []int
	logBuf     []byte
	logBatches []rdma.Batch

	arena    []byte
	arenaOff int
}

// admitPend is one object's slots in an admission round-trip.
type admitPend struct {
	obj      *object
	acc      *access
	casIdx   int // index into the node batch, -1 if none
	readIdx  int
	bits     uint64
	preLocks uint64 // lock bits held before this admission
}

// dslot is one record's slots in a direct-path fetch round-trip.
type dslot struct {
	w      *dwork
	casIdx int
	rdIdx  int
}

func (c *Coordinator) getScratch() *execScratch {
	if n := len(c.scFree); n > 0 {
		sc := c.scFree[n-1]
		c.scFree = c.scFree[:n-1]
		sc.reset()
		return sc
	}
	return &execScratch{bat: engine.NewBatcher(c.qps)}
}

func (c *Coordinator) putScratch(sc *execScratch) { c.scFree = append(c.scFree, sc) }

func (sc *execScratch) reset() {
	sc.accN = 0
	sc.accs = sc.accs[:0]
	sc.deps.list = sc.deps.list[:0]
	sc.dN = 0
	sc.dWs = sc.dWs[:0]
	sc.arenaOff = 0
}

// newAccess hands out a zeroed access from the slab, keeping the
// recycled entry's checks/readVals backing arrays.
func (sc *execScratch) newAccess() *access {
	if sc.accN == len(sc.accSlab) {
		sc.accSlab = append(sc.accSlab, access{})
	}
	a := &sc.accSlab[sc.accN]
	sc.accN++
	checks, readVals := a.checks[:0], a.readVals[:0]
	*a = access{checks: checks, readVals: readVals}
	return a
}

// newDwork is the direct path's slab twin of newAccess.
func (sc *execScratch) newDwork() *dwork {
	if sc.dN == len(sc.dSlab) {
		sc.dSlab = append(sc.dSlab, dwork{})
	}
	w := &sc.dSlab[sc.dN]
	sc.dN++
	checks, readVals := w.checks[:0], w.readVals[:0]
	*w = dwork{checks: checks, readVals: readVals}
	return w
}

// bytes carves n bytes out of the attempt arena. Slices stay valid
// even when the arena grows (a full chunk is abandoned to the
// garbage collector, not reallocated) but only until the attempt
// ends.
func (sc *execScratch) bytes(n int) []byte {
	if sc.arenaOff+n > len(sc.arena) {
		sz := 32 << 10
		if n > sz {
			sz = n
		}
		sc.arena = make([]byte, sz)
		sc.arenaOff = 0
	}
	b := sc.arena[sc.arenaOff : sc.arenaOff+n : sc.arenaOff+n]
	sc.arenaOff += n
	return b
}

// findAcc returns the access covering rk, or nil. Transactions touch
// a handful of records, so a linear scan beats a map both in time
// and in allocation.
func findAcc(list []*access, rk recKey) *access {
	for _, a := range list {
		if a.rk == rk {
			return a
		}
	}
	return nil
}

// findDwork is findAcc for the direct path.
func findDwork(list []*dwork, rk recKey) *dwork {
	for _, w := range list {
		if w.rk == rk {
			return w
		}
	}
	return nil
}
