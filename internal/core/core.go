// Package core implements CREST, the paper's contribution: a
// disaggregated transaction system resolving contention with
// cell-level concurrency control (§4), localized execution (§5) and
// parallel commits (§6).
//
// The protocol per transaction (Table 2):
//
//	execution:  masked-CAS (cell locks) + READ per read-write record,
//	            READ per read-only record — but only when the record
//	            is not already in the compute node's record cache;
//	            local transactions share fetched records and operate
//	            on uncommitted local versions;
//	validation: one READ of the record header per read-only record
//	            (the EN array validates every read cell at once);
//	commit:     one redo-log WRITE, then — for the last writer only —
//	            WRITE (cells + epoch numbers) + masked-CAS (unlock)
//	            per record, ordered within one round-trip.
//
// The Options toggles reproduce the paper's factor analysis (Exp#5):
// Base (record-level, no localized execution), +Cell, and full CREST.
package core

import (
	"encoding/binary"
	"fmt"

	"crest/internal/engine"
	"crest/internal/hashindex"
	"crest/internal/layout"
	"crest/internal/sim"
)

// logSegmentSize is each coordinator's redo-log ring.
const logSegmentSize = 64 << 10

// Options selects protocol features, mirroring the paper's factor
// analysis (§8.4, Exp#5).
type Options struct {
	// CellLevel enables cell-granularity locking and validation; when
	// false, every access covers the whole record (the Base system).
	CellLevel bool
	// Localized enables the record cache, pipelined execution and
	// parallel commits; when false the coordinator runs a strict
	// fetch–validate–commit cycle directly against the memory pool.
	// Localized execution requires cell-level concurrency control.
	Localized bool
	// ENThreshold is the attempt-duration threshold beyond which
	// validation falls back from 2-byte epoch numbers to full-record
	// commit-timestamp comparison, guarding against EN rollover
	// (§4.2). The paper sets 65,536 µs.
	ENThreshold sim.Duration
	// LockRetries bounds masked-CAS retries (and locked-read retries)
	// before an attempt aborts.
	LockRetries int
	// LockBackoff is the wait between those retries.
	LockBackoff sim.Duration
	// MaxPiggyback bounds how many consecutive local write
	// transactions may reuse the compute node's held cell locks on one
	// record before a release window is forced. Without a bound, a
	// steady local write stream keeps `writers > 0` forever, the last-
	// writer release never fires, and other compute nodes starve on
	// that record. The paper does not discuss this liveness detail;
	// the bound is our addition (see DESIGN.md).
	MaxPiggyback int
	// DrainGrace holds local writers back for a short period after a
	// forced release so contending compute nodes can win the cells.
	DrainGrace sim.Duration
	// FetchTTL rate-limits cache invalidation: a validation failure
	// marks the record cache stale only if the base is older than
	// this. Without it, sustained cross-node churn on a hot record
	// turns every abort into a refetch and the shared object's
	// admission serializes the whole compute node.
	FetchTTL sim.Duration
	// RecordLevelTables opts individual tables out of cell-level
	// concurrency control (§4.4: cell-level metadata can be reserved
	// for the tables that need it). Accesses to these tables lock and
	// validate the whole record.
	RecordLevelTables []layout.TableID
}

// DefaultOptions returns the full CREST configuration.
func DefaultOptions() Options {
	return Options{
		CellLevel:   true,
		Localized:   true,
		ENThreshold: 65536 * sim.Microsecond,
		// No-wait on foreign locks: the attempt aborts immediately and
		// releases everything it held. Spinning while holding other
		// records' locks gridlocks compute nodes against each other,
		// and even one in-place retry measurably hurts hot-key
		// handoff.
		LockRetries:  1,
		LockBackoff:  3 * sim.Microsecond,
		MaxPiggyback: 16,
		DrainGrace:   6 * sim.Microsecond,
		FetchTTL:     6 * sim.Microsecond,
	}
}

// BaseOptions is the factor-analysis Base system: record-level
// concurrency control, strict execution.
func BaseOptions() Options {
	o := DefaultOptions()
	o.CellLevel = false
	o.Localized = false
	return o
}

// CellOptions is Base plus cell-level concurrency control.
func CellOptions() Options {
	o := DefaultOptions()
	o.Localized = false
	return o
}

// System is a CREST instance over a shared DB.
type System struct {
	db        *engine.DB
	opts      Options
	layouts   map[layout.TableID]*layout.Record
	nextTxnID uint64
	logs      []recoveryLog // every coordinator's log segment, for Recover
	cns       []*ComputeNode
}

// New creates a CREST system on db.
func New(db *engine.DB, opts Options) *System {
	if opts.Localized && !opts.CellLevel {
		panic("core: localized execution requires cell-level concurrency control")
	}
	if opts.LockRetries <= 0 {
		opts.LockRetries = 1
	}
	return &System{db: db, opts: opts, layouts: map[layout.TableID]*layout.Record{}}
}

// Name labels the engine configuration.
func (s *System) Name() string {
	switch {
	case s.opts.Localized:
		return "CREST"
	case s.opts.CellLevel:
		return "CREST-cell"
	default:
		return "CREST-base"
	}
}

// DB exposes the underlying database substrate.
func (s *System) DB() *engine.DB { return s.db }

// Options returns the system's configuration.
func (s *System) Options() Options { return s.opts }

// Layout returns the CREST record layout of a table.
func (s *System) Layout(table layout.TableID) *layout.Record { return s.layouts[table] }

// CreateTable registers a table with the CREST record structure.
func (s *System) CreateTable(sc layout.Schema, capacity int) {
	sc = sc.Normalize()
	lay := layout.NewRecord(sc)
	s.layouts[sc.ID] = lay
	s.db.CreateTable(sc, lay.Size(), capacity)
}

// Load writes a record's initial cell values host-side (pre-load).
func (s *System) Load(table layout.TableID, key layout.Key, cells [][]byte) {
	lay := s.layouts[table]
	t := s.db.Table(table)
	s.db.LoadRecord(t, key, func(buf []byte) {
		layout.EncodeHeader(buf, layout.Header{Key: key, TableID: table})
		for i, v := range cells {
			if len(v) != lay.Schema.CellSizes[i] {
				panic(fmt.Sprintf("core: cell %d size %d, schema wants %d", i, len(v), lay.Schema.CellSizes[i]))
			}
			layout.PutCellVersion(buf[lay.CellOff(i):], layout.CellVersion{})
			copy(buf[lay.CellValueOff(i):], v)
		}
	})
	if h := s.db.History; h != nil && h.On {
		for i, v := range cells {
			h.SetInitial(engine.CellID{Table: table, Key: key, Cell: i}, v)
		}
	}
}

// FinishLoad publishes the hash indexes.
func (s *System) FinishLoad() error { return s.db.FinishLoad() }

// ComputeNode holds one compute node's shared state: the address
// cache, the record cache of local objects, and the TS_exec counter.
// Every coordinator of one compute node runs in the same simulation
// partition, so this state needs no locking even under parallel
// execution; db points at that partition's view of the database (the
// root DB on sequential runs).
type ComputeNode struct {
	sys       *System
	db        *engine.DB
	id        int
	cache     *hashindex.AddrCache
	objs      map[recKey]*object
	tsExecCtr uint64
	// scanGen stamps objects during applyRelease's dedup scan,
	// replacing a per-attempt map.
	scanGen uint64
	// txnSeq/txnStride allocate transaction ids partition-locally on
	// partitioned runs (stride = partition count, so ids never collide
	// across partitions); stride 0 falls back to the system-wide
	// counter.
	txnSeq    uint64
	txnStride uint64
}

type recKey struct {
	table layout.TableID
	key   layout.Key
}

// NewComputeNode creates compute node state.
func (s *System) NewComputeNode(id int) *ComputeNode {
	cn := &ComputeNode{
		sys:   s,
		db:    s.db,
		id:    id,
		cache: hashindex.NewAddrCache(),
		objs:  map[recKey]*object{},
	}
	s.cns = append(s.cns, cn)
	return cn
}

// NewPartitionComputeNode creates compute node state bound to a
// partition view of the database, drawing transaction ids from the
// strided partition-local sequence part+1, part+1+parts, … so ids stay
// system-wide unique without shared state.
func (s *System) NewPartitionComputeNode(id int, db *engine.DB, part, parts int) *ComputeNode {
	cn := s.NewComputeNode(id)
	cn.db = db
	cn.txnSeq = uint64(part) + 1
	cn.txnStride = uint64(parts)
	return cn
}

// nextTxnID draws a transaction id: partition-local strided ids on
// partition-bound nodes, the system-wide counter otherwise.
func (cn *ComputeNode) nextTxnID() uint64 {
	if cn.txnStride == 0 {
		return cn.sys.nextTxn()
	}
	id := cn.txnSeq
	cn.txnSeq += cn.txnStride
	return id
}

// WarmCache preloads the address cache with every record.
func (cn *ComputeNode) WarmCache() { cn.db.WarmCache(cn.cache) }

// CachedObjects reports the record cache's current size (diagnostics
// and cache-management tests).
func (cn *ComputeNode) CachedObjects() int { return len(cn.objs) }

// nextTSExec draws the compute node's monotonically increasing
// execution timestamp (§5.2).
func (cn *ComputeNode) nextTSExec() uint64 {
	cn.tsExecCtr++
	return cn.tsExecCtr
}

// nextTxnID draws a system-wide unique transaction id.
func (s *System) nextTxn() uint64 {
	s.nextTxnID++
	return s.nextTxnID
}

// lockMaskFor returns the lock bits an op's writes require under the
// system's granularity.
func (s *System) lockMaskFor(lay *layout.Record, op *engine.Op) uint64 {
	if !op.IsWrite() {
		return 0
	}
	if s.opts.CellLevel && !s.recordLevel(lay.Schema.ID) {
		return layout.LockMask(op.WriteCells)
	}
	return layout.AllCellsMask(lay.NumCells())
}

// recordLevel reports whether a table opted out of cell-level CC.
func (s *System) recordLevel(table layout.TableID) bool {
	for _, t := range s.opts.RecordLevelTables {
		if t == table {
			return true
		}
	}
	return false
}

// accessMaskFor returns the cells an op touches, for conflict
// classification (always the true cells, independent of granularity).
func accessMaskFor(op *engine.Op) uint64 {
	return layout.LockMask(op.ReadCells) | layout.LockMask(op.WriteCells)
}

// decodeRecord parses a fetched CREST record into header, cell values
// and cell versions.
func decodeRecord(lay *layout.Record, data []byte) (layout.Header, [][]byte, []layout.CellVersion) {
	h := layout.DecodeHeader(data)
	vals := make([][]byte, lay.NumCells())
	vers := make([]layout.CellVersion, lay.NumCells())
	for c := 0; c < lay.NumCells(); c++ {
		vers[c] = layout.GetCellVersion(data[lay.CellOff(c):])
		vals[c] = append([]byte(nil), data[lay.CellValueOff(c):][:lay.CellSize(c)]...)
	}
	return h, vals, vers
}

// snapshotConsistent applies the paper's §4.3 inter-cell check to a
// fetched record: every read cell's epoch number in the header must
// match the epoch in the cell's own version word, and no read cell may
// be locked by another holder.
func snapshotConsistent(h layout.Header, vers []layout.CellVersion, readMask, ownLocks uint64) bool {
	otherLocks := h.Lock &^ ownLocks &^ layout.DeleteMask
	if readMask&otherLocks != 0 {
		return false
	}
	for c := 0; c < len(vers); c++ {
		if readMask&(1<<uint(c)) == 0 {
			continue
		}
		if h.EN[c] != vers[c].EN {
			return false
		}
	}
	return true
}

// logRecord is one record's modifications inside a redo-log entry.
type logRecord struct {
	Table layout.TableID
	Key   layout.Key
	Mask  uint64 // written cells
	Vals  [][]byte
}

// encodeLogEntry builds the dependency-tracking redo-log entry (§6):
// transaction id, commit timestamp, dependent transaction ids, and the
// new cell values. The leading length word lets recovery walk the
// segment.
func encodeLogEntry(txnID, ts uint64, deps []uint64, recs []logRecord) []byte {
	return appendLogEntry(make([]byte, 0, 128), txnID, ts, deps, recs)
}

// appendLogEntry is encodeLogEntry appending into a caller-owned
// buffer, so the commit path can reuse one encoding buffer per
// attempt.
func appendLogEntry(buf []byte, txnID, ts uint64, deps []uint64, recs []logRecord) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0)
	buf = binary.LittleEndian.AppendUint64(buf, txnID)
	buf = binary.LittleEndian.AppendUint64(buf, ts)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(deps)))
	for _, d := range deps {
		buf = binary.LittleEndian.AppendUint64(buf, d)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(recs)))
	for _, r := range recs {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Table))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Key))
		buf = binary.LittleEndian.AppendUint64(buf, r.Mask)
		for _, v := range r.Vals {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v)))
			buf = append(buf, v...)
		}
	}
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(buf)-start))
	return buf
}

// decodeLogEntry parses one entry, returning its total length.
func decodeLogEntry(buf []byte) (txnID, ts uint64, deps []uint64, recs []logRecord, n int, err error) {
	if len(buf) < 4 {
		return 0, 0, nil, nil, 0, fmt.Errorf("core: truncated log entry")
	}
	total := int(binary.LittleEndian.Uint32(buf))
	if total < 28 || total > len(buf) {
		return 0, 0, nil, nil, 0, fmt.Errorf("core: bad log entry length %d", total)
	}
	b := buf[4:total]
	txnID = binary.LittleEndian.Uint64(b)
	ts = binary.LittleEndian.Uint64(b[8:])
	nd := binary.LittleEndian.Uint32(b[16:])
	b = b[20:]
	for i := uint32(0); i < nd; i++ {
		if len(b) < 8 {
			return 0, 0, nil, nil, 0, fmt.Errorf("core: truncated deps")
		}
		deps = append(deps, binary.LittleEndian.Uint64(b))
		b = b[8:]
	}
	if len(b) < 4 {
		return 0, 0, nil, nil, 0, fmt.Errorf("core: truncated record count")
	}
	nr := binary.LittleEndian.Uint32(b)
	b = b[4:]
	for i := uint32(0); i < nr; i++ {
		if len(b) < 20 {
			return 0, 0, nil, nil, 0, fmt.Errorf("core: truncated record")
		}
		r := logRecord{
			Table: layout.TableID(binary.LittleEndian.Uint32(b)),
			Key:   layout.Key(binary.LittleEndian.Uint64(b[4:])),
			Mask:  binary.LittleEndian.Uint64(b[12:]),
		}
		b = b[20:]
		for m := r.Mask; m != 0; m &= m - 1 {
			if len(b) < 4 {
				return 0, 0, nil, nil, 0, fmt.Errorf("core: truncated value")
			}
			vl := int(binary.LittleEndian.Uint32(b))
			if len(b) < 4+vl {
				return 0, 0, nil, nil, 0, fmt.Errorf("core: truncated value bytes")
			}
			r.Vals = append(r.Vals, append([]byte(nil), b[4:4+vl]...))
			b = b[4+vl:]
		}
		recs = append(recs, r)
	}
	return txnID, ts, deps, recs, total, nil
}

// Diag reports record-cache state across compute nodes (debugging aid
// for tests and tools).
func (s *System) Diag() string {
	out := ""
	for _, cn := range s.cns {
		objs, drains, writers, readers, locked := 0, 0, 0, 0, 0
		for _, o := range cn.objs {
			objs++
			if o.drainPending {
				drains++
			}
			writers += o.writers
			readers += o.readers
			if o.remoteLocks != 0 {
				locked++
			}
		}
		out += fmt.Sprintf("cn%d: objs=%d drainPending=%d writers=%d readers=%d lockedObjs=%d\n",
			cn.id, objs, drains, writers, readers, locked)
	}
	return out
}
