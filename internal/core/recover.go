package core

import (
	"encoding/binary"
	"fmt"
	"sort"

	"crest/internal/layout"
	"crest/internal/memnode"
)

// recoveryLog locates one coordinator's redo-log segment and the nodes
// holding its replicas.
type recoveryLog struct {
	seg   *memnode.LogSegment
	nodes []*memnode.Node
}

// RecoveryReport summarizes a crash-recovery pass (§6: dependency-
// tracking redo-logging).
type RecoveryReport struct {
	Entries       int // log entries scanned
	Committed     int // transactions rolled forward (or already applied)
	Orphaned      int // logged transactions missing a dependency's log
	CellsRepaired int // cell values whose write-back had not landed
	LocksCleared  int // records whose lock word held stale bits
}

// Recover restores the memory pool to a consistent committed snapshot
// after compute nodes crash: it scans every coordinator's redo-log
// segment, keeps exactly the transactions whose dependency closure is
// fully logged, rolls their updates forward in commit-timestamp order,
// and clears stale lock bits. It is idempotent — a second pass repairs
// nothing.
//
// Recovery runs offline against the surviving memory nodes' regions
// (the recovery coordinator reads logs and writes records; verb
// accounting is irrelevant to the paper's experiments here).
func (s *System) Recover() (RecoveryReport, error) {
	var rep RecoveryReport
	type entry struct {
		ts   uint64
		deps []uint64
		recs []logRecord
	}
	logged := map[uint64]*entry{}

	for _, rl := range s.logs {
		var buf []byte
		for _, n := range rl.nodes {
			if !n.Region.Failed() {
				buf = n.Region.Bytes()[rl.seg.Base : rl.seg.Base+uint64(rl.seg.Size)]
				break
			}
		}
		if buf == nil {
			return rep, fmt.Errorf("core: all replicas of a log segment are down")
		}
		for off := 0; off < len(buf); {
			txnID, ts, deps, recs, n, err := decodeLogEntry(buf[off:])
			if err != nil || n == 0 {
				break // end of the valid prefix
			}
			rep.Entries++
			if prev, dup := logged[txnID]; dup && prev.ts >= ts {
				off += n
				continue
			}
			logged[txnID] = &entry{ts: ts, deps: deps, recs: recs}
			off += n
		}
	}

	// A transaction is committed iff its whole dependency closure is
	// logged (fixpoint over the dependency edges).
	committed := map[uint64]bool{}
	for changed := true; changed; {
		changed = false
		for id, e := range logged {
			if committed[id] {
				continue
			}
			ok := true
			for _, d := range e.deps {
				if _, loggedDep := logged[d]; !loggedDep {
					ok = false
					break
				}
			}
			if ok {
				committed[id] = true
				changed = true
			}
		}
	}
	rep.Committed = len(committed)
	rep.Orphaned = len(logged) - len(committed)

	// Roll forward in commit-timestamp order; the per-cell timestamp
	// guard makes already-applied updates no-ops.
	ids := make([]uint64, 0, len(committed))
	for id := range committed {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return logged[ids[i]].ts < logged[ids[j]].ts })
	for _, id := range ids {
		e := logged[id]
		for _, rec := range e.recs {
			if err := s.rollForward(rec, e.ts, &rep); err != nil {
				return rep, err
			}
		}
	}

	// Clear stale lock bits left by crashed coordinators.
	for _, tab := range s.db.Tables {
		lay := s.layouts[tab.Schema.ID]
		tab.Keys(func(key layout.Key, off uint64) {
			for _, n := range s.db.Pool.ReplicaNodes(tab.Schema.ID, key) {
				if n.Region.Failed() {
					continue
				}
				buf := n.Region.Bytes()
				if lock := layout.ReadWord(buf, int(off)+layout.OffLock); lock&^layout.DeleteMask != 0 {
					layout.PutWord(buf, int(off)+layout.OffLock, lock&layout.DeleteMask)
					rep.LocksCleared++
				}
			}
		})
		_ = lay
	}
	return rep, nil
}

// rollForward applies one logged record update wherever the pool's
// cell is older than the logged commit timestamp.
func (s *System) rollForward(rec logRecord, ts uint64, rep *RecoveryReport) error {
	tab, ok := s.db.Tables[rec.Table]
	if !ok {
		return fmt.Errorf("core: recovery found unknown table %d", rec.Table)
	}
	lay := s.layouts[rec.Table]
	off, found := tab.AddrOf(rec.Key)
	if !found {
		return fmt.Errorf("core: recovery found unknown key %d in table %d", rec.Key, rec.Table)
	}
	vi := 0
	for m := rec.Mask; m != 0; m &= m - 1 {
		cell := trailingZeros(m)
		val := rec.Vals[vi]
		vi++
		if cell >= lay.NumCells() || len(val) != lay.CellSize(cell) {
			return fmt.Errorf("core: recovery log cell %d mismatches schema of table %d", cell, rec.Table)
		}
		for _, n := range s.db.Pool.ReplicaNodes(rec.Table, rec.Key) {
			if n.Region.Failed() {
				continue
			}
			buf := n.Region.Bytes()[off:]
			cur := layout.GetCellVersion(buf[lay.CellOff(cell):])
			if cur.TS >= ts {
				continue
			}
			en := cur.EN + 1
			layout.PutCellVersion(buf[lay.CellOff(cell):], layout.CellVersion{EN: en, TS: ts})
			copy(buf[lay.CellValueOff(cell):], val)
			binary.LittleEndian.PutUint16(buf[lay.ENOff(cell):], en)
			rep.CellsRepaired++
		}
	}
	return nil
}

func trailingZeros(m uint64) int {
	n := 0
	for m&1 == 0 {
		m >>= 1
		n++
	}
	return n
}

// Resync rebuilds a recovered memory node's region from the surviving
// replicas: every record whose replica set includes the node is copied
// from a healthy peer, and the node's copies of the mirrored hash
// indexes come along with the records (index contents are identical on
// every node, so the copy uses the same offsets). Run after the node's
// region is reachable again and after Recover has rolled the pool
// forward.
func (s *System) Resync(nodeID int) (records int, err error) {
	nodes := s.db.Pool.Nodes()
	if nodeID < 0 || nodeID >= len(nodes) {
		return 0, fmt.Errorf("core: no memory node %d", nodeID)
	}
	target := nodes[nodeID]
	if target.Region.Failed() {
		return 0, fmt.Errorf("core: memory node %d still marked failed", nodeID)
	}
	for _, tab := range s.db.Tables {
		lay := s.layouts[tab.Schema.ID]
		var copyErr error
		tab.Keys(func(key layout.Key, off uint64) {
			if copyErr != nil {
				return
			}
			replicas := s.db.Pool.ReplicaNodes(tab.Schema.ID, key)
			member := false
			var source *memnode.Node
			for _, n := range replicas {
				if n == target {
					member = true
				} else if source == nil && !n.Region.Failed() {
					source = n
				}
			}
			if !member {
				return
			}
			if source == nil {
				copyErr = fmt.Errorf("core: no healthy replica for %d/%d", tab.Schema.ID, key)
				return
			}
			copy(target.Region.Bytes()[off:off+uint64(lay.Size())],
				source.Region.Bytes()[off:off+uint64(lay.Size())])
			records++
		})
		if copyErr != nil {
			return records, copyErr
		}
		// Mirror the table's index region from a healthy node of the
		// target's own shard group — each group's index copy holds only
		// the keys that group owns, so another group's copy would
		// resurrect the wrong entries.
		src := otherHealthy(s.db.Pool.GroupNodes(s.db.Pool.ShardOfNode(nodeID)), target)
		if src == nil {
			return records, fmt.Errorf("core: no healthy node to copy indexes from")
		}
		base, size := tab.IndexRegion()
		copy(target.Region.Bytes()[base:base+uint64(size)], src.Region.Bytes()[base:base+uint64(size)])
	}
	return records, nil
}

func otherHealthy(nodes []*memnode.Node, target *memnode.Node) *memnode.Node {
	for _, n := range nodes {
		if n != target && !n.Region.Failed() {
			return n
		}
	}
	return nil
}
