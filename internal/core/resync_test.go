package core

import (
	"bytes"
	"testing"

	"crest/internal/engine"
	"crest/internal/layout"
	"crest/internal/sim"
)

func TestResyncRebuildsFailedNode(t *testing.T) {
	f := newFixture(t, DefaultOptions(), 3, 1, 1, 8, false)
	coord := f.cns[0].NewCoordinator(0)

	// Node 2 fails; transactions keep committing against the
	// survivors (only keys whose replica set avoids node 2 — pick them
	// by probing).
	f.sys.db.Pool.Nodes()[2].Region.Fail()
	var usable []int
	for k := 0; k < 8; k++ {
		ok := true
		for _, n := range f.sys.db.Pool.ReplicaNodes(1, layout.Key(k)) {
			if n.ID == 2 {
				ok = false
			}
		}
		if ok {
			usable = append(usable, k)
		}
	}
	if len(usable) == 0 {
		t.Skip("no key avoids node 2 under this placement")
	}
	f.env.Spawn("c", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			retryUntilCommit(p, coord, incTxn(layout.Key(usable[0]), 0, 1))
		}
	})
	run(t, f)

	// Resync is rejected while the node is still down.
	if _, err := f.sys.Resync(2); err == nil {
		t.Fatal("resync accepted a failed node")
	}
	f.sys.db.Pool.Nodes()[2].Region.Recover()
	n, err := f.sys.Resync(2)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("resync copied nothing")
	}
	// Every record replicated on node 2 now matches its primary.
	tab := f.sys.db.Table(1)
	lay := f.sys.layouts[1]
	tab.Keys(func(key layout.Key, off uint64) {
		onTarget := false
		for _, nn := range f.sys.db.Pool.ReplicaNodes(1, key) {
			if nn.ID == 2 {
				onTarget = true
			}
		}
		if !onTarget {
			return
		}
		primary := f.sys.db.Pool.PrimaryOf(1, key)
		a := primary.Region.Bytes()[off : off+uint64(lay.Size())]
		b := f.sys.db.Pool.Nodes()[2].Region.Bytes()[off : off+uint64(lay.Size())]
		if !bytes.Equal(a, b) {
			t.Fatalf("key %d differs on resynced node", key)
		}
	})
	if _, err := f.sys.Resync(99); err == nil {
		t.Fatal("bad node id accepted")
	}
}

func TestHybridRecordLevelTables(t *testing.T) {
	opts := DefaultOptions()
	opts.RecordLevelTables = []layout.TableID{1}
	f := newFixture(t, opts, 1, 2, 0, 2, false)
	c1 := f.cns[0].NewCoordinator(0)
	c2 := f.cns[1].NewCoordinator(1)
	outcomes := make([]engine.Attempt, 2)
	f.env.Spawn("c1", func(p *sim.Proc) {
		txn := incTxn(0, 0, 1)
		txn.Blocks[0].Ops[0].Hook = func(_ any, read [][]byte) [][]byte {
			p.Sleep(100 * sim.Microsecond)
			return [][]byte{read[0]}
		}
		outcomes[0] = c1.Execute(p, txn)
	})
	f.env.Spawn("c2", func(p *sim.Proc) {
		p.Sleep(10 * sim.Microsecond)
		outcomes[1] = c2.Execute(p, incTxn(0, 2, 1)) // disjoint cell
	})
	run(t, f)
	// With table 1 opted out of cell-level CC, disjoint cells conflict
	// like a record-level system.
	if !outcomes[0].Committed {
		t.Fatalf("holder aborted: %v", outcomes[0].Reason)
	}
	if outcomes[1].Committed {
		t.Fatal("record-level table let disjoint cells through")
	}
}
