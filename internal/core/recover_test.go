package core

import (
	"testing"

	"crest/internal/layout"
	"crest/internal/sim"
)

func TestRecoverCleanRunIsIdempotent(t *testing.T) {
	f := newFixture(t, DefaultOptions(), 2, 1, 1, 2, false)
	coord := f.cns[0].NewCoordinator(0)
	f.env.Spawn("c", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			retryUntilCommit(p, coord, incTxn(0, 0, 1))
		}
	})
	run(t, f)
	rep, err := f.sys.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Entries != 5 || rep.Committed != 5 {
		t.Fatalf("report %+v, want 5 entries all committed", rep)
	}
	if rep.CellsRepaired != 0 {
		t.Fatalf("clean run repaired %d cells", rep.CellsRepaired)
	}
	if rep.LocksCleared != 0 {
		t.Fatalf("clean run cleared %d locks", rep.LocksCleared)
	}
	if got := f.poolCell(f.sys.db.Pool.PrimaryOf(1, 0), 0, 0); got != 5 {
		t.Fatalf("counter = %d", got)
	}
}

func TestRecoverRollsForwardUnflushedCommit(t *testing.T) {
	// Crash the run at a point where some transactions have logged
	// (committed) but their write-back has not landed. Recovery must
	// roll them forward.
	f := newFixture(t, DefaultOptions(), 2, 2, 1, 2, false)
	for i := 0; i < 8; i++ {
		coord := f.cns[i%2].NewCoordinator(i)
		f.env.Spawn("w", func(p *sim.Proc) {
			for j := 0; j < 20; j++ {
				retryUntilCommit(p, coord, incTxn(0, 0, 1))
			}
		})
	}
	// Stop mid-flight: a crash of all compute nodes.
	if err := f.env.RunUntil(sim.Time(300 * sim.Microsecond)); err != nil {
		t.Fatal(err)
	}
	rep, err := f.sys.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Entries == 0 {
		t.Fatal("no log entries found mid-run")
	}
	// After recovery: every replica holds the newest committed value,
	// no locks remain, and a second pass is a no-op.
	var want uint64
	for _, n := range f.sys.db.Pool.ReplicaNodes(1, 0) {
		got := f.poolCell(n, 0, 0)
		if want == 0 {
			want = got
		}
		if got != want {
			t.Fatalf("replicas diverge after recovery: %d vs %d", got, want)
		}
		if h := f.poolHeader(n, 0); h.Lock != 0 {
			t.Fatalf("lock bits survive recovery: %b", h.Lock)
		}
	}
	if want != uint64(rep.Committed) {
		// Each committed increment adds one; the newest committed
		// value equals the number of committed increments.
		t.Fatalf("counter = %d after recovery, committed = %d", want, rep.Committed)
	}
	rep2, err := f.sys.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.CellsRepaired != 0 || rep2.LocksCleared != 0 {
		t.Fatalf("second recovery not a no-op: %+v", rep2)
	}
}

func TestRecoverDropsOrphanedDependents(t *testing.T) {
	// Hand-craft a log: txn 2 depends on txn 1, whose entry is
	// missing. Recovery must not apply txn 2.
	f := newFixture(t, DefaultOptions(), 1, 1, 0, 2, false)
	coord := f.cns[0].NewCoordinator(0)
	entry := encodeLogEntry(2, 50, []uint64{1}, []logRecord{
		{Table: 1, Key: 0, Mask: 1, Vals: [][]byte{word(999)}},
	})
	off := coord.log.Reserve(len(entry))
	buf := f.sys.db.Pool.Nodes()[0].Region.Bytes()
	copy(buf[off:], entry)
	rep, err := f.sys.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Orphaned != 1 || rep.Committed != 0 {
		t.Fatalf("report %+v, want 1 orphan", rep)
	}
	if got := f.poolCell(f.sys.db.Pool.Nodes()[0], 0, 0); got == 999 {
		t.Fatal("orphaned transaction applied")
	}
}

func TestRecoverAppliesDependencyChain(t *testing.T) {
	// txn 1 (ts 10) writes 7; txn 2 (ts 20, depends on 1) writes 8.
	// Both logged → both applied, in timestamp order.
	f := newFixture(t, DefaultOptions(), 1, 1, 0, 2, false)
	coord := f.cns[0].NewCoordinator(0)
	e1 := encodeLogEntry(1, 10, nil, []logRecord{{Table: 1, Key: 0, Mask: 0b10, Vals: [][]byte{word(7)}}})
	e2 := encodeLogEntry(2, 20, []uint64{1}, []logRecord{{Table: 1, Key: 0, Mask: 0b10, Vals: [][]byte{word(8)}}})
	buf := f.sys.db.Pool.Nodes()[0].Region.Bytes()
	off1 := coord.log.Reserve(len(e1))
	copy(buf[off1:], e1)
	off2 := coord.log.Reserve(len(e2))
	copy(buf[off2:], e2)
	rep, err := f.sys.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Committed != 2 {
		t.Fatalf("committed = %d, want 2", rep.Committed)
	}
	if got := f.poolCell(f.sys.db.Pool.Nodes()[0], 0, 1); got != 8 {
		t.Fatalf("cell = %d, want 8 (ts order)", got)
	}
	// The header epoch advanced twice (two applied versions).
	if h := f.poolHeader(f.sys.db.Pool.Nodes()[0], 0); h.EN[1] != 2 {
		t.Fatalf("EN = %d, want 2", h.EN[1])
	}
}

func TestRecoverSurvivesOneLogReplicaFailure(t *testing.T) {
	f := newFixture(t, DefaultOptions(), 2, 1, 1, 2, false)
	coord := f.cns[0].NewCoordinator(0)
	f.env.Spawn("c", func(p *sim.Proc) {
		retryUntilCommit(p, coord, incTxn(0, 0, 1))
	})
	run(t, f)
	// Fail the first log replica; the backup still has the entry.
	coord.logN[0].Region.Fail()
	defer coord.logN[0].Region.Recover()
	rep, err := f.sys.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Entries != 1 || rep.Committed != 1 {
		t.Fatalf("report %+v", rep)
	}
}

func TestRecoverAllLogReplicasDownErrors(t *testing.T) {
	f := newFixture(t, DefaultOptions(), 1, 1, 0, 2, false)
	coord := f.cns[0].NewCoordinator(0)
	_ = coord
	f.sys.db.Pool.Nodes()[0].Region.Fail()
	defer f.sys.db.Pool.Nodes()[0].Region.Recover()
	if _, err := f.sys.Recover(); err == nil {
		t.Fatal("recovery succeeded with every log replica down")
	}
}

func TestRecoverClearsStaleLocks(t *testing.T) {
	f := newFixture(t, DefaultOptions(), 1, 1, 0, 2, false)
	// Leave a stale lock bit as a crashed coordinator would.
	tab := f.sys.db.Table(1)
	off, _ := tab.AddrOf(1)
	buf := f.sys.db.Pool.Nodes()[0].Region.Bytes()
	layout.PutWord(buf, int(off)+layout.OffLock, 0b101)
	rep, err := f.sys.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.LocksCleared != 1 {
		t.Fatalf("LocksCleared = %d", rep.LocksCleared)
	}
	if got := layout.ReadWord(buf, int(off)+layout.OffLock); got != 0 {
		t.Fatalf("lock word = %b", got)
	}
}

func TestRecoverPreservesDeleteBit(t *testing.T) {
	f := newFixture(t, DefaultOptions(), 1, 1, 0, 2, false)
	tab := f.sys.db.Table(1)
	off, _ := tab.AddrOf(1)
	buf := f.sys.db.Pool.Nodes()[0].Region.Bytes()
	layout.PutWord(buf, int(off)+layout.OffLock, layout.DeleteMask|0b1)
	if _, err := f.sys.Recover(); err != nil {
		t.Fatal(err)
	}
	if got := layout.ReadWord(buf, int(off)+layout.OffLock); got != layout.DeleteMask {
		t.Fatalf("lock word = %x, want delete bit preserved", got)
	}
}

func TestRecoverCrashStress(t *testing.T) {
	// Crash at several points in a contended run; recovery must always
	// produce replica-consistent state with the counter equal to the
	// committed count.
	for _, crashAt := range []sim.Duration{80, 150, 400, 900} {
		f := newFixture(t, DefaultOptions(), 2, 2, 1, 2, false)
		for i := 0; i < 6; i++ {
			coord := f.cns[i%2].NewCoordinator(i)
			f.env.Spawn("w", func(p *sim.Proc) {
				for j := 0; j < 30; j++ {
					retryUntilCommit(p, coord, incTxn(0, 0, 1))
				}
			})
		}
		if err := f.env.RunUntil(sim.Time(crashAt * sim.Microsecond)); err != nil {
			t.Fatal(err)
		}
		rep, err := f.sys.Recover()
		if err != nil {
			t.Fatal(err)
		}
		var vals []uint64
		for _, n := range f.sys.db.Pool.ReplicaNodes(1, 0) {
			vals = append(vals, f.poolCell(n, 0, 0))
		}
		for _, v := range vals {
			if v != vals[0] {
				t.Fatalf("crash@%dµs: replicas diverge %v", crashAt, vals)
			}
		}
		if vals[0] != uint64(rep.Committed) {
			t.Fatalf("crash@%dµs: counter %d vs committed %d", crashAt, vals[0], rep.Committed)
		}
	}
}
