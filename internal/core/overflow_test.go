package core

import (
	"testing"

	"crest/internal/engine"
	"crest/internal/layout"
	"crest/internal/sim"
)

// forgeRollover simulates a full 2^16-update rollover of one cell's
// epoch number on every replica, host-side: the epoch returns to its
// current value while the value and commit timestamp move on — the
// exact situation that fools EN-equality validation and that the
// §4.2 time threshold exists for.
func forgeRollover(f *fixture, key layout.Key, cell int, newVal uint64) {
	tab := f.sys.db.Table(1)
	off, _ := tab.AddrOf(key)
	lay := f.sys.layouts[1]
	for _, n := range f.sys.db.Pool.ReplicaNodes(1, key) {
		buf := n.Region.Bytes()[off:]
		ver := layout.GetCellVersion(buf[lay.CellOff(cell):])
		// Same EN (a 65,536-update wrap), newer commit timestamp.
		layout.PutCellVersion(buf[lay.CellOff(cell):], layout.CellVersion{EN: ver.EN, TS: ver.TS + 999})
		copy(buf[lay.CellValueOff(cell):], word(newVal))
	}
}

// TestENRolloverMissedWithoutThreshold documents the hazard: a
// transaction that stays under the threshold validates by epoch
// number alone and cannot see a full rollover. (The paper's argument
// is that a rollover needs ≥65,536 commits on one cell, which cannot
// happen within the 65,536µs threshold.)
func TestENRolloverMissedWithoutThreshold(t *testing.T) {
	opts := DefaultOptions() // threshold far above the txn's duration
	f := newFixture(t, opts, 1, 1, 0, 4, false)
	coord := f.cns[0].NewCoordinator(0)
	var att engine.Attempt
	f.env.Spawn("reader", func(p *sim.Proc) {
		txn := &engine.Txn{Label: "r", ReadOnly: true}
		txn.Blocks = []engine.Block{{Ops: []engine.Op{{
			Table: 1, Key: 0, ReadCells: []int{0},
			Hook: func(_ any, _ [][]byte) [][]byte {
				// A forged rollover lands between read and validation.
				forgeRollover(f, 0, 0, 777)
				p.Sleep(10 * sim.Microsecond)
				return nil
			},
		}}}}
		att = coord.Execute(p, txn)
	})
	if err := f.env.Run(); err != nil {
		t.Fatal(err)
	}
	if !att.Committed {
		t.Fatalf("expected the EN check to be fooled by a rollover (got %v)", att.Reason)
	}
}

// TestENRolloverCaughtByThresholdFallback shows the defence: past the
// threshold, validation reads the whole record and compares commit
// timestamps, which a rollover cannot preserve.
func TestENRolloverCaughtByThresholdFallback(t *testing.T) {
	opts := DefaultOptions()
	opts.ENThreshold = 5 * sim.Microsecond // force the fallback
	f := newFixture(t, opts, 1, 1, 0, 4, false)
	coord := f.cns[0].NewCoordinator(0)
	var att engine.Attempt
	f.env.Spawn("reader", func(p *sim.Proc) {
		txn := &engine.Txn{Label: "r", ReadOnly: true}
		txn.Blocks = []engine.Block{{Ops: []engine.Op{{
			Table: 1, Key: 0, ReadCells: []int{0},
			Hook: func(_ any, _ [][]byte) [][]byte {
				forgeRollover(f, 0, 0, 777)
				p.Sleep(10 * sim.Microsecond)
				return nil
			},
		}}}}
		att = coord.Execute(p, txn)
	})
	if err := f.env.Run(); err != nil {
		t.Fatal(err)
	}
	if att.Committed {
		t.Fatal("timestamp fallback failed to catch the rollover")
	}
	if att.Reason != engine.AbortValidation {
		t.Fatalf("reason = %v", att.Reason)
	}
}
