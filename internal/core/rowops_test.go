package core

import (
	"testing"

	"crest/internal/engine"
	"crest/internal/layout"
	"crest/internal/sim"
)

func TestInsertRowVisibleToTransactions(t *testing.T) {
	f := newFixture(t, DefaultOptions(), 2, 2, 1, 4, false)
	inserter := f.cns[0].NewCoordinator(0)
	reader := f.cns[1].NewCoordinator(1)
	f.env.Spawn("insert", func(p *sim.Proc) {
		err := inserter.InsertRow(p, 1, 100, [][]byte{word(7), word(8), word(9)})
		if err != nil {
			t.Errorf("insert: %v", err)
		}
	})
	if err := f.env.Run(); err != nil {
		t.Fatal(err)
	}
	// The new row is readable from the other compute node (cold
	// address cache → index lookup).
	var got []uint64
	f.env.Spawn("read", func(p *sim.Proc) {
		txn := readTxn(100, []int{0, 1, 2}, &got)
		if a := reader.Execute(p, txn); !a.Committed {
			t.Errorf("read abort: %v", a.Reason)
		}
	})
	if err := f.env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 7 || got[1] != 8 || got[2] != 9 {
		t.Fatalf("read %v", got)
	}
	// Locks fully released on every replica.
	for _, n := range f.sys.db.Pool.ReplicaNodes(1, 100) {
		if h := f.poolHeader(n, 100); h.Lock != 0 {
			t.Fatalf("insert leaked locks: %b", h.Lock)
		}
	}
}

func TestInsertRowRejectsDuplicatesAndBadShape(t *testing.T) {
	f := newFixture(t, DefaultOptions(), 1, 1, 0, 4, false)
	coord := f.cns[0].NewCoordinator(0)
	f.env.Spawn("c", func(p *sim.Proc) {
		if err := coord.InsertRow(p, 1, 0, [][]byte{word(1), word(2), word(3)}); err == nil {
			t.Error("duplicate key accepted")
		}
		if err := coord.InsertRow(p, 1, 200, [][]byte{word(1)}); err == nil {
			t.Error("wrong cell count accepted")
		}
		if err := coord.InsertRow(p, 99, 200, nil); err == nil {
			t.Error("unknown table accepted")
		}
	})
	if err := f.env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteRowAbortsReaders(t *testing.T) {
	f := newFixture(t, DefaultOptions(), 2, 2, 1, 4, false)
	deleter := f.cns[0].NewCoordinator(0)
	reader := f.cns[1].NewCoordinator(1)
	f.env.Spawn("delete", func(p *sim.Proc) {
		if err := deleter.DeleteRow(p, 1, 2); err != nil {
			t.Errorf("delete: %v", err)
		}
	})
	if err := f.env.Run(); err != nil {
		t.Fatal(err)
	}
	// The delete bit is set, cell locks are clear.
	for _, n := range f.sys.db.Pool.ReplicaNodes(1, 2) {
		h := f.poolHeader(n, 2)
		if h.Lock != layout.DeleteMask {
			t.Fatalf("node %d lock word %x, want delete bit only", n.ID, h.Lock)
		}
	}
	// A transaction touching the ghost row aborts rather than reading
	// stale data.
	f.env.Spawn("read", func(p *sim.Proc) {
		var got []uint64
		a := reader.Execute(p, readTxn(2, []int{0}, &got))
		if a.Committed {
			t.Error("read of deleted row committed")
		}
		if a.Reason != engine.AbortValidation {
			t.Errorf("reason %v", a.Reason)
		}
	})
	if err := f.env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteRowContendedTimesOut(t *testing.T) {
	f := newFixture(t, DefaultOptions(), 1, 2, 0, 4, false)
	holder := f.cns[0].NewCoordinator(0)
	deleter := f.cns[1].NewCoordinator(1)
	f.env.Spawn("holder", func(p *sim.Proc) {
		txn := incTxn(3, 0, 1)
		txn.Blocks[0].Ops[0].Hook = func(_ any, read [][]byte) [][]byte {
			p.Sleep(300 * sim.Microsecond)
			return [][]byte{read[0]}
		}
		holder.Execute(p, txn)
	})
	f.env.Spawn("deleter", func(p *sim.Proc) {
		p.Sleep(10 * sim.Microsecond)
		if err := deleter.DeleteRow(p, 1, 3); err == nil {
			t.Error("delete succeeded against held cell locks")
		}
	})
	if err := f.env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertThenDeleteRoundTrip(t *testing.T) {
	f := newFixture(t, DefaultOptions(), 1, 1, 0, 4, false)
	coord := f.cns[0].NewCoordinator(0)
	f.env.Spawn("c", func(p *sim.Proc) {
		if err := coord.InsertRow(p, 1, 50, [][]byte{word(1), word(2), word(3)}); err != nil {
			t.Fatalf("insert: %v", err)
		}
		if err := coord.DeleteRow(p, 1, 50); err != nil {
			t.Fatalf("delete: %v", err)
		}
		if err := coord.DeleteRow(p, 1, 999); err == nil {
			t.Error("delete of absent key accepted")
		}
	})
	if err := f.env.Run(); err != nil {
		t.Fatal(err)
	}
}
