package core

import (
	"testing"

	"crest/internal/engine"
	"crest/internal/sim"
)

// TestCrossCNWriterNotStarvedByLocalStream guards the MaxPiggyback
// release window: a remote compute node's writer must eventually
// acquire a cell that a continuous local write stream keeps hot.
// (Without the drain bound, writers never reaches zero on the owning
// node and the lock is retained forever.)
func TestCrossCNWriterNotStarvedByLocalStream(t *testing.T) {
	f := newFixture(t, DefaultOptions(), 1, 2, 0, 2, false)
	stop := false
	// Compute node 0: a stream of overlapping writers on key 0.
	for i := 0; i < 6; i++ {
		coord := f.cns[0].NewCoordinator(i)
		f.env.Spawn("local", func(p *sim.Proc) {
			retry := engine.DefaultRetryPolicy()
			for attempt := 1; !stop; attempt++ {
				a := coord.Execute(p, incTxn(0, 0, 1))
				if a.Committed {
					attempt = 0
					p.Sleep(sim.Microsecond)
					continue
				}
				p.Sleep(retry.Backoff(attempt, p.Rand()))
			}
		})
	}
	// Compute node 1: one contender that must get through.
	won := false
	contender := f.cns[1].NewCoordinator(10)
	f.env.Spawn("remote", func(p *sim.Proc) {
		retry := engine.DefaultRetryPolicy()
		for attempt := 1; !stop; attempt++ {
			if a := contender.Execute(p, incTxn(0, 0, 1)); a.Committed {
				won = true
				stop = true
				return
			}
			p.Sleep(retry.Backoff(attempt, p.Rand()))
		}
	})
	f.env.Spawn("deadline", func(p *sim.Proc) {
		p.Sleep(20 * sim.Millisecond)
		stop = true
	})
	if err := f.env.Run(); err != nil {
		t.Fatal(err)
	}
	if !won {
		t.Fatal("remote writer starved for 20ms of virtual time")
	}
}

// TestReleaseNotStarvedByReaderRefetches guards the releaseReq gate:
// the last writer's release must complete even while readers
// continuously (re)admit the record. Observable: once the writers
// finish, the pool lock word clears.
func TestReleaseNotStarvedByReaderRefetches(t *testing.T) {
	f := newFixture(t, DefaultOptions(), 1, 2, 0, 2, false)
	stopReaders := false
	for i := 0; i < 8; i++ {
		coord := f.cns[0].NewCoordinator(i)
		f.env.Spawn("reader", func(p *sim.Proc) {
			for !stopReaders {
				var out []uint64
				coord.Execute(p, readTxn(0, []int{0, 1, 2}, &out))
				p.Sleep(sim.Microsecond)
			}
		})
	}
	// A remote writer keeps invalidating the readers' cache so they
	// refetch (admission traffic on the hot object).
	remote := f.cns[1].NewCoordinator(20)
	f.env.Spawn("remote-writer", func(p *sim.Proc) {
		retry := engine.DefaultRetryPolicy()
		for j := 0; j < 10; j++ {
			for attempt := 1; ; attempt++ {
				if a := remote.Execute(p, incTxn(0, 2, 1)); a.Committed {
					break
				}
				p.Sleep(retry.Backoff(attempt, p.Rand()))
			}
			p.Sleep(5 * sim.Microsecond)
		}
	})
	// Local writers come and go; their releases must land.
	writer := f.cns[0].NewCoordinator(21)
	f.env.Spawn("local-writer", func(p *sim.Proc) {
		retry := engine.DefaultRetryPolicy()
		for j := 0; j < 20; j++ {
			for attempt := 1; ; attempt++ {
				if a := writer.Execute(p, incTxn(0, 0, 1)); a.Committed {
					break
				}
				p.Sleep(retry.Backoff(attempt, p.Rand()))
			}
		}
		p.Sleep(50 * sim.Microsecond)
		stopReaders = true
	})
	if err := f.env.Run(); err != nil {
		t.Fatal(err)
	}
	for _, n := range f.sys.db.Pool.ReplicaNodes(1, 0) {
		if h := f.poolHeader(n, 0); h.Lock != 0 {
			t.Fatalf("lock retained after writers finished: %b on node %d", h.Lock, n.ID)
		}
	}
	if got := f.poolCell(f.sys.db.Pool.PrimaryOf(1, 0), 0, 0); got != 20 {
		t.Fatalf("local writes lost: cell = %d, want 20", got)
	}
}
