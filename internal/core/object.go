package core

import (
	"fmt"

	"crest/internal/layout"
	"crest/internal/memnode"
	"crest/internal/sim"
)

// txnStatus tracks a local transaction's lifecycle for dependency
// tracking (§5.1 of the paper).
type txnStatus int

const (
	txnPending txnStatus = iota
	txnCommitted
	txnAborted
)

// txnState is the per-transaction record other local transactions
// depend on. A dependent waits on waitQ until the transaction
// resolves.
type txnState struct {
	id     uint64
	tsExec uint64
	status txnStatus
	// whyID is the causality recorder's id for this transaction (0
	// when recording is off), so dependency waits and flushed versions
	// can be attributed to their creator.
	whyID uint64
	// tsAssigned is set the instant the commit timestamp is drawn,
	// before the redo-log round-trip; once set, commit is inevitable.
	// The supersede check orders against it rather than against the
	// (later) resolve.
	tsAssigned uint64
	tsCommit   uint64
	waitQ      sim.WaitQueue
}

func (t *txnState) label() string {
	return fmt.Sprintf("txn%d(tsExec=%d,status=%d)", t.id, t.tsExec, t.status)
}

// resolve publishes the outcome and wakes every dependent.
func (t *txnState) resolve(status txnStatus, tsCommit uint64) {
	t.status = status
	t.tsCommit = tsCommit
	t.waitQ.WakeAll()
}

// await blocks p until the transaction resolves.
func (t *txnState) await(p *sim.Proc) {
	for t.status == txnPending {
		t.waitQ.SetName("await " + t.label())
		t.waitQ.Wait(p)
	}
}

// version is one uncommitted (or committed-but-unflushed) local value
// of a single cell, tagged with its creator's execution timestamp
// (§5.2: block ordering coordination).
type version struct {
	txn    *txnState
	tsExec uint64
	value  []byte
}

// cellState is the per-cell slice of a local object.
type cellState struct {
	versions  []*version // ordered by tsExec (ascending)
	maxReadTS uint64     // highest TS_exec that read this cell
}

// newestLive returns the newest non-aborted version, or nil.
func (c *cellState) newestLive() *version {
	for i := len(c.versions) - 1; i >= 0; i-- {
		if c.versions[i].txn.status != txnAborted {
			return c.versions[i]
		}
	}
	return nil
}

// object is a local object in the record cache (§5.1): the compute
// node's shared view of one record, carrying the reference counter,
// the epoch array and the version lists, plus the remote cell locks
// the compute node holds on the record.
type object struct {
	table   layout.TableID
	key     layout.Key
	off     uint64
	lay     *layout.Record
	primary *memnode.Node

	mu *sim.Mutex // local 2PL lock (one per object, §5.2)

	readers int // reference counter: local txns reading the record
	writers int // reference counter: local txns updating the record

	admitted  bool // base/epochs populated from the memory pool
	admitting bool // one coordinator is fetching (cache admission)
	flushing  bool // last writer is writing back
	// releaseReq counts coordinators about to release/flush this
	// object; admissions hold off while it is nonzero so a steady
	// stream of reader refetches cannot starve the last writer's
	// release.
	releaseReq int
	stateQ     sim.WaitQueue // waiters for admission / flush transitions

	// streak counts consecutive write transactions that piggybacked on
	// the held remote locks; past Options.MaxPiggyback, drainPending
	// turns away new writers until the last writer releases, giving
	// other compute nodes a window to acquire the cells.
	streak       int
	drainPending bool
	// drainUntil extends the release window after the locks drop:
	// local writers hold back until this instant so contending compute
	// nodes can win the cells (locals otherwise recapture at the very
	// release instant, starving remote writers).
	drainUntil sim.Time

	// scanGen is the compute node's dedup stamp (see applyRelease).
	scanGen uint64

	// whyOwner is the causality id of the transaction currently inside
	// the object's local critical section (0 when recording is off or
	// the mutex is free), read by waiters to attribute local-wait
	// edges. Maintained unconditionally — a plain uint64 store.
	whyOwner uint64

	remoteLocks uint64               // cell lock bits this CN holds in the pool
	epochs      []uint16             // CN view of the pool's EN array
	base        [][]byte             // committed cell values (CN view)
	baseVer     []layout.CellVersion // cell versions matching base
	cells       []cellState          // per-cell version lists
	firstFetch  sim.Time             // when base was fetched (EN threshold)
}

func newObject(table layout.TableID, key layout.Key, off uint64, lay *layout.Record, primary *memnode.Node) *object {
	n := lay.NumCells()
	return &object{
		table:   table,
		key:     key,
		off:     off,
		lay:     lay,
		primary: primary,
		mu:      sim.NewMutex(fmt.Sprintf("obj %d/%d", table, key)),
		epochs:  make([]uint16, n),
		base:    make([][]byte, n),
		baseVer: make([]layout.CellVersion, n),
		cells:   make([]cellState, n),
		stateQ:  sim.WaitQueue{},
	}
}

// refTotal is the object's total reference count.
func (o *object) refTotal() int { return o.readers + o.writers }

// latest returns the value a reader at tsExec should observe for cell
// c and the version it came from (nil when the base value applies).
func (o *object) latest(c int) (*version, []byte) {
	if v := o.cells[c].newestLive(); v != nil {
		return v, v.value
	}
	return nil, o.base[c]
}

// append installs a new version of cell c.
func (o *object) append(c int, v *version) {
	o.cells[c].versions = append(o.cells[c].versions, v)
}

// dropAborted removes aborted versions from every cell list.
func (o *object) dropAborted() {
	for c := range o.cells {
		live := o.cells[c].versions[:0]
		for _, v := range o.cells[c].versions {
			if v.txn.status != txnAborted {
				live = append(live, v)
			}
		}
		o.cells[c].versions = live
	}
}

// flushPlan describes what the last writer must write back for one
// cell: the newest committed value, its commit timestamp, and how many
// epoch increments the folded versions represent.
type flushPlan struct {
	cell  int
	value []byte
	ts    uint64
	en    uint16 // epoch number after the folded bumps
	bumps int
	why   uint64 // causality id of the version's creator (0 = off)
}

// collectFlush folds every committed version into the base and returns
// the write-back plan. It must run when writers == 0, i.e. when every
// version is resolved. Pending versions cannot exist then.
//
// Pending readers of the folded versions need no bookkeeping here:
// they revalidate at commit (the fold moves the base commit timestamp,
// which their supersede check compares against).
func (o *object) collectFlush() []flushPlan {
	o.dropAborted()
	var plans []flushPlan
	for c := range o.cells {
		cs := &o.cells[c]
		vs := cs.versions
		if len(vs) == 0 {
			continue
		}
		newest := vs[len(vs)-1]
		if newest.txn.status != txnCommitted {
			panic("core: flush with unresolved version")
		}
		bumps := len(vs)
		en := o.epochs[c] + uint16(bumps)
		plans = append(plans, flushPlan{cell: c, value: newest.value, ts: newest.txn.tsCommit, en: en, bumps: bumps, why: newest.txn.whyID})
		o.epochs[c] = en
		o.base[c] = newest.value
		o.baseVer[c] = layout.CellVersion{EN: en, TS: newest.txn.tsCommit}
		cs.versions = nil
	}
	return plans
}
