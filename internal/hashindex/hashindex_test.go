package hashindex

import (
	"testing"
	"testing/quick"

	"crest/internal/layout"
	"crest/internal/memnode"
	"crest/internal/rdma"
	"crest/internal/sim"
)

type fixture struct {
	env    *sim.Env
	fabric *rdma.Fabric
	pool   *memnode.Pool
	ix     *Index
}

func newFixture(mns, capacity int) *fixture {
	env := sim.NewEnv(1)
	params := rdma.DefaultParams()
	params.JitterPct = 0
	fabric := rdma.NewFabric(env, params)
	pool := memnode.NewPool(fabric, mns, 1<<22, 0)
	return &fixture{env: env, fabric: fabric, pool: pool, ix: New(pool, 1, capacity)}
}

func (f *fixture) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	f.env.Spawn("test", fn)
	if err := f.env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoadThenLookup(t *testing.T) {
	f := newFixture(2, 1000)
	entries := map[layout.Key]uint64{}
	for k := layout.Key(0); k < 1000; k++ {
		entries[k] = uint64(k) * 64
	}
	if err := f.ix.BulkLoad(f.pool, entries); err != nil {
		t.Fatal(err)
	}
	f.run(t, func(p *sim.Proc) {
		for _, node := range f.pool.Nodes() {
			qp := f.fabric.Connect(node.Region)
			for k, want := range entries {
				off, found, err := f.ix.Lookup(p, qp, k)
				if err != nil {
					t.Fatal(err)
				}
				if !found || off != want {
					t.Fatalf("lookup %d on node %d = (%d,%v), want (%d,true)",
						k, node.ID, off, found, want)
				}
			}
		}
	})
}

func TestLookupMissingKey(t *testing.T) {
	f := newFixture(1, 100)
	if err := f.ix.BulkLoad(f.pool, map[layout.Key]uint64{1: 64, 2: 128}); err != nil {
		t.Fatal(err)
	}
	f.run(t, func(p *sim.Proc) {
		qp := f.fabric.Connect(f.pool.Nodes()[0].Region)
		_, found, err := f.ix.Lookup(p, qp, 999)
		if err != nil {
			t.Fatal(err)
		}
		if found {
			t.Fatal("found a key never inserted")
		}
	})
}

func TestKeyZeroIsUsable(t *testing.T) {
	f := newFixture(1, 10)
	if err := f.ix.BulkLoad(f.pool, map[layout.Key]uint64{0: 4096}); err != nil {
		t.Fatal(err)
	}
	f.run(t, func(p *sim.Proc) {
		qp := f.fabric.Connect(f.pool.Nodes()[0].Region)
		off, found, err := f.ix.Lookup(p, qp, 0)
		if err != nil || !found || off != 4096 {
			t.Fatalf("lookup(0) = (%d,%v,%v)", off, found, err)
		}
	})
}

func TestDuplicateLoadRejected(t *testing.T) {
	f := newFixture(1, 10)
	if err := f.ix.BulkLoad(f.pool, map[layout.Key]uint64{5: 64}); err != nil {
		t.Fatal(err)
	}
	if err := f.ix.BulkLoad(f.pool, map[layout.Key]uint64{5: 128}); err == nil {
		t.Fatal("duplicate key accepted")
	}
}

func TestRemoteInsertVisibleEverywhere(t *testing.T) {
	f := newFixture(3, 100)
	f.run(t, func(p *sim.Proc) {
		if err := f.ix.InsertAll(p, f.fabric, f.pool, 77, 8192); err != nil {
			t.Fatal(err)
		}
		for _, node := range f.pool.Nodes() {
			qp := f.fabric.Connect(node.Region)
			off, found, err := f.ix.Lookup(p, qp, 77)
			if err != nil || !found || off != 8192 {
				t.Fatalf("node %d lookup = (%d,%v,%v)", node.ID, off, found, err)
			}
		}
	})
}

func TestInsertDuplicateFails(t *testing.T) {
	f := newFixture(1, 100)
	f.run(t, func(p *sim.Proc) {
		qp := f.fabric.Connect(f.pool.Nodes()[0].Region)
		if err := f.ix.Insert(p, qp, 9, 64); err != nil {
			t.Fatal(err)
		}
		if err := f.ix.Insert(p, qp, 9, 128); err == nil {
			t.Fatal("duplicate insert accepted")
		}
	})
}

func TestConcurrentInsertersDoNotCollide(t *testing.T) {
	f := newFixture(1, 256)
	node := f.pool.Nodes()[0]
	for i := 0; i < 16; i++ {
		key := layout.Key(i)
		f.env.Spawn("inserter", func(p *sim.Proc) {
			qp := f.fabric.Connect(node.Region)
			if err := f.ix.Insert(p, qp, key, uint64(key)*64+64); err != nil {
				t.Errorf("insert %d: %v", key, err)
			}
		})
	}
	if err := f.env.Run(); err != nil {
		t.Fatal(err)
	}
	f.env.Spawn("verify", func(p *sim.Proc) {
		qp := f.fabric.Connect(node.Region)
		for i := 0; i < 16; i++ {
			off, found, err := f.ix.Lookup(p, qp, layout.Key(i))
			if err != nil || !found || off != uint64(i)*64+64 {
				t.Errorf("lookup %d = (%d,%v,%v)", i, off, found, err)
			}
		}
	})
	if err := f.env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteHidesKeyButKeepsProbeChain(t *testing.T) {
	f := newFixture(1, 64)
	entries := map[layout.Key]uint64{}
	for k := layout.Key(0); k < 64; k++ {
		entries[k] = uint64(k+1) * 64
	}
	if err := f.ix.BulkLoad(f.pool, entries); err != nil {
		t.Fatal(err)
	}
	f.run(t, func(p *sim.Proc) {
		qp := f.fabric.Connect(f.pool.Nodes()[0].Region)
		if err := f.ix.Delete(p, qp, 10); err != nil {
			t.Fatal(err)
		}
		if _, found, _ := f.ix.Lookup(p, qp, 10); found {
			t.Fatal("deleted key still found")
		}
		// Every other key must remain reachable even if it probed past
		// key 10's entry.
		for k := layout.Key(0); k < 64; k++ {
			if k == 10 {
				continue
			}
			off, found, err := f.ix.Lookup(p, qp, k)
			if err != nil || !found || off != entries[k] {
				t.Fatalf("lookup %d after delete = (%d,%v,%v)", k, off, found, err)
			}
		}
	})
}

func TestOverCapacityRejected(t *testing.T) {
	f := newFixture(1, 4)
	entries := map[layout.Key]uint64{}
	for k := layout.Key(0); k < 5; k++ {
		entries[k] = 64
	}
	if err := f.ix.BulkLoad(f.pool, entries); err == nil {
		t.Fatal("over-capacity load accepted")
	}
}

func TestLookupCostIsOneReadWhenUncontended(t *testing.T) {
	f := newFixture(1, 1000)
	entries := map[layout.Key]uint64{}
	for k := layout.Key(0); k < 1000; k++ {
		entries[k] = uint64(k+1) * 64
	}
	if err := f.ix.BulkLoad(f.pool, entries); err != nil {
		t.Fatal(err)
	}
	f.run(t, func(p *sim.Proc) {
		qp := f.fabric.Connect(f.pool.Nodes()[0].Region)
		before := f.fabric.Stats()
		n := 200
		for k := layout.Key(0); k < layout.Key(n); k++ {
			if _, found, err := f.ix.Lookup(p, qp, k); err != nil || !found {
				t.Fatal("lookup failed")
			}
		}
		reads := f.fabric.Stats().Sub(before).Reads
		// Load factor ≤ 1/2 keeps probing rare: average well under two
		// READs per lookup.
		if reads > uint64(n)*3/2 {
			t.Fatalf("%d reads for %d lookups", reads, n)
		}
	})
}

func TestAddrCache(t *testing.T) {
	c := NewAddrCache()
	if _, ok := c.Get(1, 2); ok {
		t.Fatal("empty cache hit")
	}
	c.Put(1, 2, 4096)
	if off, ok := c.Get(1, 2); !ok || off != 4096 {
		t.Fatalf("Get = (%d,%v)", off, ok)
	}
	if _, ok := c.Get(2, 2); ok {
		t.Fatal("cross-table hit")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
}

// Property: any set of distinct keys loads and resolves correctly.
func TestQuickLoadLookup(t *testing.T) {
	f := func(raw []uint16) bool {
		keys := map[layout.Key]uint64{}
		for i, r := range raw {
			keys[layout.Key(r)] = uint64(i+1) * 64
		}
		if len(keys) == 0 {
			return true
		}
		fx := newFixture(1, len(keys))
		if err := fx.ix.BulkLoad(fx.pool, keys); err != nil {
			return false
		}
		ok := true
		fx.env.Spawn("check", func(p *sim.Proc) {
			qp := fx.fabric.Connect(fx.pool.Nodes()[0].Region)
			for k, want := range keys {
				off, found, err := fx.ix.Lookup(p, qp, k)
				if err != nil || !found || off != want {
					ok = false
					return
				}
			}
		})
		if err := fx.env.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
