// Package hashindex implements the one-sided-RDMA-friendly hash index
// that maps a record's primary key to its offset in the memory pool
// (§2.2 of the paper: "records ... accessed via a hash index").
//
// The index is laid out so a lookup costs one READ in the common case:
// buckets are one cacheline (four 16-byte entries) and collisions
// spill to the next bucket by linear probing. Index contents are
// mirrored on every memory node of the shard group owning the key
// (allocation in the pool is symmetric across groups), so a
// coordinator probes the node it is about to read the record from.
// With one shard group that is every node — the historical layout.
//
// Compute nodes keep an address cache in front of the index — the
// usual deployment for all three systems — so steady-state
// transactions resolve addresses locally and the per-transaction verb
// counts match Table 2.
package hashindex

import (
	"encoding/binary"
	"fmt"

	"crest/internal/layout"
	"crest/internal/memnode"
	"crest/internal/rdma"
	"crest/internal/sim"
)

const (
	entrySize       = 16
	entriesPerBkt   = 4
	bucketSize      = entrySize * entriesPerBkt // one cacheline
	validBit        = uint64(1) << 63
	maxProbeBuckets = 64
)

// Index is one table's hash index, mirrored across the pool.
type Index struct {
	table   layout.TableID
	base    uint64
	buckets uint64
	used    int
	cap     int
}

// New allocates an index able to hold capacity keys. Bucket count is
// sized for a load factor of at most one half to keep probe chains
// short.
func New(pool *memnode.Pool, table layout.TableID, capacity int) *Index {
	if capacity <= 0 {
		panic("hashindex: capacity must be positive")
	}
	buckets := nextPow2(uint64(2*capacity+entriesPerBkt-1) / entriesPerBkt)
	ix := &Index{
		table:   table,
		base:    pool.Alloc(int(buckets) * bucketSize),
		buckets: buckets,
		cap:     capacity,
	}
	return ix
}

func nextPow2(v uint64) uint64 {
	n := uint64(1)
	for n < v {
		n <<= 1
	}
	return n
}

// Buckets returns the number of buckets (for sizing diagnostics).
func (ix *Index) Buckets() int { return int(ix.buckets) }

// Base returns the index's pool-mirrored base offset.
func (ix *Index) Base() uint64 { return ix.base }

// SizeBytes returns the index footprint per node.
func (ix *Index) SizeBytes() int { return int(ix.buckets) * bucketSize }

func (ix *Index) bucketOff(b uint64) uint64 { return ix.base + b*bucketSize }

func (ix *Index) home(key layout.Key) uint64 {
	return hash64(uint64(ix.table), uint64(key)) & (ix.buckets - 1)
}

// storedKey biases keys by one so the zero word means "empty entry".
func storedKey(key layout.Key) uint64 { return uint64(key) + 1 }

func hash64(a, b uint64) uint64 {
	x := a*0x9e3779b97f4a7c15 + b
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// BulkLoad inserts entries host-side into every node's region, the way
// the benchmark pre-loads the database before measurement. It bypasses
// the fabric entirely.
func (ix *Index) BulkLoad(pool *memnode.Pool, entries map[layout.Key]uint64) error {
	for key, off := range entries {
		if err := ix.loadOne(pool, key, off); err != nil {
			return err
		}
	}
	return nil
}

func (ix *Index) loadOne(pool *memnode.Pool, key layout.Key, off uint64) error {
	if ix.used >= ix.cap {
		return fmt.Errorf("hashindex: table %d over capacity %d", ix.table, ix.cap)
	}
	// Each group's index copy holds only the keys that group owns, so
	// probe chains resolve against the owning group's first node.
	group := pool.GroupNodes(pool.ShardOf(ix.table, key))
	first := group[0].Region.Bytes()
	for probe := uint64(0); probe < maxProbeBuckets; probe++ {
		b := (ix.home(key) + probe) & (ix.buckets - 1)
		bOff := ix.bucketOff(b)
		for e := 0; e < entriesPerBkt; e++ {
			eOff := bOff + uint64(e*entrySize)
			if binary.LittleEndian.Uint64(first[eOff:]) == storedKey(key) {
				return fmt.Errorf("hashindex: duplicate key %d in table %d", key, ix.table)
			}
			if binary.LittleEndian.Uint64(first[eOff+8:]) != 0 {
				continue
			}
			for _, n := range group {
				buf := n.Region.Bytes()
				binary.LittleEndian.PutUint64(buf[eOff:], storedKey(key))
				binary.LittleEndian.PutUint64(buf[eOff+8:], off|validBit)
			}
			ix.used++
			return nil
		}
	}
	return fmt.Errorf("hashindex: probe chain exceeded for key %d", key)
}

// Lookup resolves key to a record offset with one-sided READs on qp
// (one per probed bucket; the first probe almost always suffices).
func (ix *Index) Lookup(p *sim.Proc, qp *rdma.QP, key layout.Key) (off uint64, found bool, err error) {
	for probe := uint64(0); probe < maxProbeBuckets; probe++ {
		b := (ix.home(key) + probe) & (ix.buckets - 1)
		data, err := qp.Read(p, ix.bucketOff(b), bucketSize)
		if err != nil {
			return 0, false, err
		}
		sawEmpty := false
		for e := 0; e < entriesPerBkt; e++ {
			k := binary.LittleEndian.Uint64(data[e*entrySize:])
			meta := binary.LittleEndian.Uint64(data[e*entrySize+8:])
			if k == storedKey(key) && meta&validBit != 0 {
				return meta &^ validBit, true, nil
			}
			if k == 0 && meta == 0 {
				sawEmpty = true
			}
		}
		if sawEmpty {
			return 0, false, nil
		}
	}
	return 0, false, nil
}

// Insert claims an entry for key via one-sided verbs: a CAS on the key
// word claims the slot, then a WRITE publishes the valid offset. The
// two steps take separate round-trips because a NIC does not suppress
// later WQEs when an earlier CAS fails. The caller is responsible for
// issuing the insert on every replica node (contents are mirrored);
// InsertAll does that.
func (ix *Index) Insert(p *sim.Proc, qp *rdma.QP, key layout.Key, off uint64) error {
	for probe := uint64(0); probe < maxProbeBuckets; probe++ {
		b := (ix.home(key) + probe) & (ix.buckets - 1)
		bOff := ix.bucketOff(b)
		data, err := qp.Read(p, bOff, bucketSize)
		if err != nil {
			return err
		}
		for e := 0; e < entriesPerBkt; e++ {
			k := binary.LittleEndian.Uint64(data[e*entrySize:])
			if k == storedKey(key) {
				return fmt.Errorf("hashindex: key %d already present", key)
			}
			if k != 0 {
				continue
			}
			eOff := bOff + uint64(e*entrySize)
			_, ok, err := qp.CAS(p, eOff, 0, storedKey(key))
			if err != nil {
				return err
			}
			if !ok {
				// Lost the race for this entry; rescan the bucket.
				return ix.Insert(p, qp, key, off)
			}
			if err := qp.Write(p, eOff+8, packMeta(off)); err != nil {
				return err
			}
			return nil
		}
	}
	return fmt.Errorf("hashindex: no space for key %d", key)
}

func packMeta(off uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, off|validBit)
	return b
}

// InsertAll performs Insert against every node of the shard group
// owning key, keeping that group's mirrored copies identical.
func (ix *Index) InsertAll(p *sim.Proc, fabric *rdma.Fabric, pool *memnode.Pool, key layout.Key, off uint64) error {
	for _, n := range pool.GroupNodes(pool.ShardOf(ix.table, key)) {
		if err := ix.Insert(p, fabric.Connect(n.Region), key, off); err != nil {
			return err
		}
	}
	return nil
}

// Delete tombstones key's entry on qp's node by clearing its valid
// bit. The entry's key word stays claimed, preserving probe chains.
func (ix *Index) Delete(p *sim.Proc, qp *rdma.QP, key layout.Key) error {
	for probe := uint64(0); probe < maxProbeBuckets; probe++ {
		b := (ix.home(key) + probe) & (ix.buckets - 1)
		bOff := ix.bucketOff(b)
		data, err := qp.Read(p, bOff, bucketSize)
		if err != nil {
			return err
		}
		sawEmpty := false
		for e := 0; e < entriesPerBkt; e++ {
			k := binary.LittleEndian.Uint64(data[e*entrySize:])
			if k == storedKey(key) {
				return qp.Write(p, bOff+uint64(e*entrySize)+8, make([]byte, 8))
			}
			if k == 0 {
				sawEmpty = true
			}
		}
		if sawEmpty {
			return fmt.Errorf("hashindex: delete of absent key %d", key)
		}
	}
	return fmt.Errorf("hashindex: delete of absent key %d", key)
}

// AddrCache is the compute-node address cache in front of the index.
type AddrCache struct {
	m map[addrKey]uint64
}

type addrKey struct {
	table layout.TableID
	key   layout.Key
}

// NewAddrCache returns an empty cache.
func NewAddrCache() *AddrCache {
	return &AddrCache{m: map[addrKey]uint64{}}
}

// Get returns the cached offset for (table, key).
func (c *AddrCache) Get(table layout.TableID, key layout.Key) (uint64, bool) {
	off, ok := c.m[addrKey{table, key}]
	return off, ok
}

// Put caches the offset for (table, key).
func (c *AddrCache) Put(table layout.TableID, key layout.Key, off uint64) {
	c.m[addrKey{table, key}] = off
}

// Len reports the number of cached addresses.
func (c *AddrCache) Len() int { return len(c.m) }
