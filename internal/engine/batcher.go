package engine

import "crest/internal/rdma"

// Batcher groups rdma ops per target memory region into batches for
// one PostMulti round-trip, replacing the per-attempt
// `map[int]int + append` idiom on every coordinator hot path. All
// backing arrays (the batch list and each batch's Ops) are retained
// across Begin calls, so steady-state batch building allocates
// nothing.
//
// A Batcher must not be shared by overlapping attempts: ops appended
// for one round-trip stay referenced by the fabric until the issuing
// PostMulti returns, so the next Begin may only happen after that.
type Batcher struct {
	qps     *QPCache
	batches []rdma.Batch
	rids    []int // region ID per active batch (for perNode reset)
	perNode []int // region ID → batch index + 1; 0 = absent
	n       int   // active batch count
}

// NewBatcher returns an empty builder connecting through qps.
func NewBatcher(qps *QPCache) *Batcher { return &Batcher{qps: qps} }

// Begin starts a new round-trip, forgetting previous batches but
// keeping their Ops backing arrays for reuse.
func (b *Batcher) Begin() {
	for i := 0; i < b.n; i++ {
		b.perNode[b.rids[i]] = 0
	}
	b.n = 0
}

// Batch returns the batch index for region r, creating an empty batch
// on the region's first use this round-trip.
func (b *Batcher) Batch(r *rdma.Region) int {
	id := r.ID()
	if id >= len(b.perNode) {
		b.perNode = append(b.perNode, make([]int, id+1-len(b.perNode))...)
	}
	if bi := b.perNode[id]; bi != 0 {
		return bi - 1
	}
	bi := b.n
	if bi == len(b.batches) {
		b.batches = append(b.batches, rdma.Batch{})
		b.rids = append(b.rids, 0)
	}
	b.batches[bi].QP = b.qps.Get(r)
	b.batches[bi].Ops = b.batches[bi].Ops[:0]
	b.rids[bi] = id
	b.n++
	b.perNode[id] = bi + 1
	return bi
}

// Lookup returns region r's batch index; the batch must exist.
func (b *Batcher) Lookup(r *rdma.Region) int { return b.perNode[r.ID()] - 1 }

// Append adds op to batch bi and returns the op's index within it.
func (b *Batcher) Append(bi int, op rdma.Op) int {
	b.batches[bi].Ops = append(b.batches[bi].Ops, op)
	return len(b.batches[bi].Ops) - 1
}

// Len returns the number of ops currently in batch bi.
func (b *Batcher) Len(bi int) int { return len(b.batches[bi].Ops) }

// Batches returns the active batches, ready for rdma.PostMulti.
func (b *Batcher) Batches() []rdma.Batch { return b.batches[:b.n] }
