package engine

import (
	"crest/internal/causality"
	"crest/internal/rdma"
	"crest/internal/sim"
	"crest/internal/trace"
)

// AttemptTimer measures one transaction attempt: per-phase virtual
// time, the fabric verbs attributable to the attempt, and the trace
// span. It replaces the per-engine ad-hoc timers with one shared
// implementation so every engine reports phases the same way and every
// phase transition reaches the trace.
//
// Usage: BeginAttempt at the top of Execute, Phase at each protocol
// phase boundary, Fail at an abort site (before any release/cleanup
// work, so the failing phase's duration is frozen there), and Done as
// the final statement of every return path (after cleanup, so the verb
// diff includes release traffic — aborting attempts pay for their lock
// releases).
//
// Attempt folds the phases the way the pre-existing timers did:
// Exec = execute + lock, Commit = log + apply, and release time after
// a Fail is excluded. The trace keeps the finer five-phase split.
type AttemptTimer struct {
	db     *DB
	p      *sim.Proc
	span   *trace.Span
	why    *causality.Txn
	verbs0 rdma.Stats
	start  sim.Time
	mark   sim.Time
	cur    trace.Phase
	dur    [trace.NumPhases]sim.Duration
	failed bool
	reason AbortReason
	falseC bool
	shard  int
	cross  bool
}

// BeginAttempt starts timing one attempt of t on coordinator coord,
// whose log (and therefore commit decision) lives on home shard
// group home, opening (or, on a retry of the same *Txn, resuming) its
// trace span.
func BeginAttempt(db *DB, p *sim.Proc, coord uint64, home int, t *Txn) AttemptTimer {
	at := AttemptTimer{db: db, p: p, verbs0: db.VerbStats(), start: p.Now(), mark: p.Now(), cur: trace.PhaseExec, shard: home}
	if db.Trace != nil {
		at.span = db.Trace.StartSpan(p, coord, t.Label, t)
		db.Trace.EnterPhase(at.mark, at.span, trace.PhaseExec)
	}
	at.why = db.Why.Begin(p, coord, t.Label, t)
	db.Flight.Begin(p, coord, home, t.Label, t)
	db.Met.beginAttempt(home)
	return at
}

// MarkCrossShard records that the attempt's write set spans shard
// groups (it will pay the cross-shard prepare round at commit). The
// first call per attempt counts; repeats are no-ops.
func (at *AttemptTimer) MarkCrossShard() {
	if at.cross {
		return
	}
	at.cross = true
	at.db.Met.crossShard()
}

// CrossShard reports whether MarkCrossShard was called this attempt.
func (at *AttemptTimer) CrossShard() bool { return at.cross }

// WhyID returns the attempt's causality txn id (0 when recording is
// off), for engines that need to stamp holder identity onto shared
// state (CREST local objects and flush plans).
func (at *AttemptTimer) WhyID() uint64 { return at.why.WhyID() }

// Span returns the attempt's trace span (nil when tracing is off).
func (at *AttemptTimer) Span() *trace.Span { return at.span }

// Start returns the virtual time the attempt began.
func (at *AttemptTimer) Start() sim.Time { return at.start }

// Phase transitions to ph, charging the elapsed time to the phase
// being left.
func (at *AttemptTimer) Phase(ph trace.Phase) {
	now := at.p.Now()
	at.dur[at.cur] += now.Sub(at.mark)
	at.mark = now
	at.cur = ph
	at.db.Trace.EnterPhase(now, at.span, ph)
	at.db.Flight.Phase(at.p, ph)
}

// Fail marks the attempt aborted: the failing phase's duration is
// frozen here and subsequent time (lock release, write-back) accrues
// to the untallied release phase, exactly as the pre-existing timers
// captured phase durations before cleanup.
func (at *AttemptTimer) Fail(reason AbortReason, falseConflict bool) {
	now := at.p.Now()
	at.dur[at.cur] += now.Sub(at.mark)
	at.mark = now
	at.cur = trace.PhaseRelease
	at.failed = true
	at.reason = reason
	at.falseC = falseConflict
	if at.db.Trace != nil {
		at.db.Trace.Abort(now, at.span, reason.String(), falseConflict)
		at.db.Trace.EnterPhase(now, at.span, trace.PhaseRelease)
	}
	at.db.Why.Abort(now, at.why, reason.String())
	at.db.Flight.Fail(at.p, reason.String(), reason == AbortWait)
	at.db.Met.fail(reason, falseConflict, at.cross)
}

// Done closes the attempt and returns its outcome. The verb diff is
// taken here — after any cleanup — matching how the engines have
// always attributed release traffic to the attempt.
func (at *AttemptTimer) Done() Attempt {
	now := at.p.Now()
	if !at.failed {
		at.dur[at.cur] += now.Sub(at.mark)
		at.db.Trace.Commit(now, at.span)
		at.db.Why.Commit(now, at.why)
	}
	// Flight keeps charging past a Fail (release time stays in the
	// budget, which must sum to elapsed virtual time), so it closes on
	// every path.
	at.db.Flight.Done(at.p, !at.failed)
	at.db.Met.done(!at.failed, now.Sub(at.start), at.shard)
	return Attempt{
		Committed:     !at.failed,
		Reason:        at.reason,
		FalseConflict: at.falseC,
		CrossShard:    at.cross,
		Exec:          at.dur[trace.PhaseExec] + at.dur[trace.PhaseLock],
		Validate:      at.dur[trace.PhaseValidate],
		Commit:        at.dur[trace.PhaseLog] + at.dur[trace.PhaseApply],
		Verbs:         at.db.VerbStats().Sub(at.verbs0),
	}
}
