package engine

import (
	"crest/internal/metrics"
	"crest/internal/sim"
)

// Metrics is the engine-level instrument bundle. It is a value struct of
// nil-safe instrument handles: on a DB without metrics every field is
// nil and every call through it is a no-op, so protocol code uses
// db.Met unconditionally. All three engines share the bundle because
// they share the attempt timer and the abort-reason vocabulary.
type Metrics struct {
	// Active tracks transaction attempts currently executing (between
	// BeginAttempt and Done).
	Active *metrics.Gauge
	// LockWaiters tracks coordinators blocked waiting for a local lock
	// (the lock-wait depth: how deep the convoy behind held locks is).
	LockWaiters *metrics.Gauge

	// Attempts counts attempts started; Commits counts attempts that
	// committed; Retries counts failed attempts (each failed attempt is
	// retried by the harness, so the two totals coincide).
	Attempts *metrics.Counter
	Commits  *metrics.Counter
	Retries  *metrics.Counter
	// Aborts breaks failed attempts down by AbortReason (indexed by the
	// reason value); FalseAborts counts the subset whose conflicting
	// transaction touched disjoint cells of the same record.
	Aborts      [AbortWait + 1]*metrics.Counter
	FalseAborts *metrics.Counter

	// LockAcquires counts locks granted (local or remote CAS wins);
	// LockConflicts counts lock attempts that lost to another holder;
	// Piggybacks counts lock grants carried on CREST piggyback messages
	// instead of dedicated round-trips.
	LockAcquires  *metrics.Counter
	LockConflicts *metrics.Counter
	Piggybacks    *metrics.Counter

	// LatencyUs is the committed-attempt latency distribution in virtual
	// microseconds.
	LatencyUs *metrics.Histogram
}

// SetMetrics registers the engine instruments in r and installs the
// bundle on the DB. A nil registry leaves the disabled (zero) bundle in
// place; calling it twice re-registers idempotently.
func (db *DB) SetMetrics(r *metrics.Registry) {
	db.Metrics = r
	if r == nil {
		db.Met = Metrics{}
		return
	}
	m := Metrics{
		Active: r.Gauge("crest_txn_active", "",
			"Transaction attempts currently executing."),
		LockWaiters: r.Gauge("crest_txn_lock_waiters", "",
			"Coordinators blocked waiting for a local record lock."),
		Attempts: r.Counter("crest_txn_attempts_total", "",
			"Transaction attempts started."),
		Commits: r.Counter("crest_txn_commits_total", "",
			"Transaction attempts committed."),
		Retries: r.Counter("crest_txn_retries_total", "",
			"Transaction attempts aborted and retried."),
		FalseAborts: r.Counter("crest_txn_false_aborts_total", "",
			"Aborts whose conflicting transaction touched disjoint cells."),
		LockAcquires: r.Counter("crest_lock_acquires_total", "",
			"Record locks granted."),
		LockConflicts: r.Counter("crest_lock_conflicts_total", "",
			"Record lock attempts that lost to another holder."),
		Piggybacks: r.Counter("crest_lock_piggybacks_total", "",
			"Lock grants piggybacked on existing messages (CREST)."),
		LatencyUs: r.Histogram("crest_txn_latency_us", "",
			"Committed-attempt latency in virtual microseconds.", nil),
	}
	for reason := AbortLockFail; reason <= AbortWait; reason++ {
		m.Aborts[reason] = r.Counter("crest_txn_aborts_total",
			`reason="`+reason.String()+`"`,
			"Transaction attempts aborted, by reason.")
	}
	db.Met = m
}

// beginAttempt records an attempt starting.
func (m *Metrics) beginAttempt() {
	m.Active.Inc()
	m.Attempts.Inc()
}

// fail records an attempt aborting for reason.
func (m *Metrics) fail(reason AbortReason, falseConflict bool) {
	m.Retries.Inc()
	if reason >= AbortNone && int(reason) < len(m.Aborts) {
		m.Aborts[reason].Inc()
	}
	if falseConflict {
		m.FalseAborts.Inc()
	}
}

// done records an attempt finishing; committed attempts contribute
// their latency.
func (m *Metrics) done(committed bool, latency sim.Duration) {
	m.Active.Dec()
	if committed {
		m.Commits.Inc()
		m.LatencyUs.Observe(int64(latency) / int64(sim.Microsecond))
	}
}
