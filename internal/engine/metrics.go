package engine

import (
	"strconv"

	"crest/internal/metrics"
	"crest/internal/sim"
)

// Metrics is the engine-level instrument bundle. It is a value struct of
// nil-safe instrument handles: on a DB without metrics every field is
// nil and every call through it is a no-op, so protocol code uses
// db.Met unconditionally. All three engines share the bundle because
// they share the attempt timer and the abort-reason vocabulary.
type Metrics struct {
	// Active tracks transaction attempts currently executing (between
	// BeginAttempt and Done).
	Active *metrics.Gauge
	// LockWaiters tracks coordinators blocked waiting for a local lock
	// (the lock-wait depth: how deep the convoy behind held locks is).
	LockWaiters *metrics.Gauge

	// Attempts counts attempts started; Commits counts attempts that
	// committed; Retries counts failed attempts (each failed attempt is
	// retried by the harness, so the two totals coincide).
	Attempts *metrics.Counter
	Commits  *metrics.Counter
	Retries  *metrics.Counter
	// Aborts breaks failed attempts down by AbortReason (indexed by the
	// reason value); FalseAborts counts the subset whose conflicting
	// transaction touched disjoint cells of the same record.
	Aborts      [AbortWait + 1]*metrics.Counter
	FalseAborts *metrics.Counter

	// LockAcquires counts locks granted (local or remote CAS wins);
	// LockConflicts counts lock attempts that lost to another holder;
	// Piggybacks counts lock grants carried on CREST piggyback messages
	// instead of dedicated round-trips.
	LockAcquires  *metrics.Counter
	LockConflicts *metrics.Counter
	Piggybacks    *metrics.Counter

	// LatencyUs is the committed-attempt latency distribution in virtual
	// microseconds.
	LatencyUs *metrics.Histogram

	// CrossShardTxns counts write attempts whose records span shard
	// groups (they pay the cross-shard prepare round at commit);
	// CrossShardAborts counts the subset that aborted.
	CrossShardTxns   *metrics.Counter
	CrossShardAborts *metrics.Counter
	// ShardActive and ShardCommits break attempts down by home shard
	// group, one labeled series per group. Registered only on sharded
	// topologies so single-group runs export exactly the historical
	// series set.
	ShardActive  []*metrics.Gauge
	ShardCommits []*metrics.Counter
}

// SetMetrics registers the engine instruments in r and installs the
// bundle on the DB. A nil registry leaves the disabled (zero) bundle in
// place; calling it twice re-registers idempotently.
func (db *DB) SetMetrics(r *metrics.Registry) {
	db.Metrics = r
	if r == nil {
		db.Met = Metrics{}
		return
	}
	m := Metrics{
		Active: r.Gauge("crest_txn_active", "",
			"Transaction attempts currently executing."),
		LockWaiters: r.Gauge("crest_txn_lock_waiters", "",
			"Coordinators blocked waiting for a local record lock."),
		Attempts: r.Counter("crest_txn_attempts_total", "",
			"Transaction attempts started."),
		Commits: r.Counter("crest_txn_commits_total", "",
			"Transaction attempts committed."),
		Retries: r.Counter("crest_txn_retries_total", "",
			"Transaction attempts aborted and retried."),
		FalseAborts: r.Counter("crest_txn_false_aborts_total", "",
			"Aborts whose conflicting transaction touched disjoint cells."),
		LockAcquires: r.Counter("crest_lock_acquires_total", "",
			"Record locks granted."),
		LockConflicts: r.Counter("crest_lock_conflicts_total", "",
			"Record lock attempts that lost to another holder."),
		Piggybacks: r.Counter("crest_lock_piggybacks_total", "",
			"Lock grants piggybacked on existing messages (CREST)."),
		LatencyUs: r.Histogram("crest_txn_latency_us", "",
			"Committed-attempt latency in virtual microseconds.", nil),
	}
	for reason := AbortLockFail; reason <= AbortWait; reason++ {
		m.Aborts[reason] = r.Counter("crest_txn_aborts_total",
			`reason="`+reason.String()+`"`,
			"Transaction attempts aborted, by reason.")
	}
	m.CrossShardTxns = r.Counter("crest_txn_cross_shard_total", "",
		"Write attempts whose records span shard groups.")
	m.CrossShardAborts = r.Counter("crest_txn_cross_shard_aborts_total", "",
		"Cross-shard write attempts that aborted.")
	if db.Pool != nil && db.Pool.Shards() > 1 {
		for g := 0; g < db.Pool.Shards(); g++ {
			label := `shard="` + strconv.Itoa(g) + `"`
			m.ShardActive = append(m.ShardActive, r.Gauge(
				"crest_shard_txn_active", label,
				"Attempts currently executing, by home shard group."))
			m.ShardCommits = append(m.ShardCommits, r.Counter(
				"crest_shard_commits_total", label,
				"Committed attempts, by home shard group."))
		}
	}
	db.Met = m
}

// beginAttempt records an attempt starting on home shard group.
func (m *Metrics) beginAttempt(shard int) {
	m.Active.Inc()
	m.Attempts.Inc()
	if shard >= 0 && shard < len(m.ShardActive) {
		m.ShardActive[shard].Inc()
	}
}

// crossShard records an attempt discovering it spans shard groups.
func (m *Metrics) crossShard() {
	m.CrossShardTxns.Inc()
}

// fail records an attempt aborting for reason.
func (m *Metrics) fail(reason AbortReason, falseConflict, crossShard bool) {
	m.Retries.Inc()
	if reason >= AbortNone && int(reason) < len(m.Aborts) {
		m.Aborts[reason].Inc()
	}
	if falseConflict {
		m.FalseAborts.Inc()
	}
	if crossShard {
		m.CrossShardAborts.Inc()
	}
}

// done records an attempt finishing; committed attempts contribute
// their latency and their home shard group's commit counter.
func (m *Metrics) done(committed bool, latency sim.Duration, shard int) {
	m.Active.Dec()
	if shard >= 0 && shard < len(m.ShardActive) {
		m.ShardActive[shard].Dec()
	}
	if committed {
		m.Commits.Inc()
		m.LatencyUs.Observe(int64(latency) / int64(sim.Microsecond))
		if shard >= 0 && shard < len(m.ShardCommits) {
			m.ShardCommits[shard].Inc()
		}
	}
}
