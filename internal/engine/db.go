package engine

import (
	"fmt"

	"crest/internal/causality"
	"crest/internal/flight"
	"crest/internal/hashindex"
	"crest/internal/layout"
	"crest/internal/memnode"
	"crest/internal/metrics"
	"crest/internal/placement"
	"crest/internal/rdma"
	"crest/internal/sim"
	"crest/internal/trace"
)

// Table is one table's placement in the memory pool: a heap of record
// slots (mirrored offsets, replicated contents) plus the hash index
// resolving keys to slot offsets.
type Table struct {
	Schema layout.Schema
	Index  *hashindex.Index
	Heap   *memnode.Heap

	addr    map[layout.Key]uint64 // host-side key → offset, mirrors the index
	nextRow int
	pending map[layout.Key]uint64 // entries not yet bulk-loaded into the index
}

// AddrOf returns the loaded record's offset, for warming compute-node
// address caches. It reflects host-side loads only.
func (t *Table) AddrOf(key layout.Key) (uint64, bool) {
	off, ok := t.addr[key]
	return off, ok
}

// NumLoaded reports how many records have been loaded.
func (t *Table) NumLoaded() int { return t.nextRow }

// Keys iterates the loaded keys (host-side, for verification tools).
func (t *Table) Keys(fn func(layout.Key, uint64)) {
	for k, off := range t.addr {
		fn(k, off)
	}
}

// IndexRegion exposes the table's hash-index placement (base offset
// and byte size) for node resynchronization.
func (t *Table) IndexRegion() (base uint64, size int) {
	return t.Index.Base(), t.Index.SizeBytes()
}

// ClaimSlot assigns the next free heap slot to key and returns its
// offset, for runtime row inserts. Slot allocation is host-side — a
// stand-in for the per-compute-node free lists a real deployment would
// partition (see DESIGN.md); index publication stays the caller's job.
func (t *Table) ClaimSlot(key layout.Key) (uint64, error) {
	if _, dup := t.addr[key]; dup {
		return 0, fmt.Errorf("engine: key %d already in table %q", key, t.Schema.Name)
	}
	if t.nextRow >= t.Heap.Count {
		return 0, fmt.Errorf("engine: table %q full at %d records", t.Schema.Name, t.Heap.Count)
	}
	off := t.Heap.SlotOff(t.nextRow)
	t.nextRow++
	t.addr[key] = off
	return off, nil
}

// DB is the shared database substrate an engine builds on: the memory
// pool, the tables, and the cross-cutting instrumentation (timestamp
// oracle, conflict tracker, optional history).
type DB struct {
	Pool    *memnode.Pool
	Fabric  *rdma.Fabric
	Tables  map[layout.TableID]*Table
	TSO     *TSO
	Tracker *ConflictTracker
	History *History
	Cost    CostModel
	// Trace, when non-nil, receives every engine-level event (spans,
	// phases, lock traffic). Callers who set it should also call
	// Fabric.SetRecorder and sim's SetObserver with the same recorder.
	Trace *trace.Recorder
	// Metrics, when non-nil, is the registry the Met bundle's
	// instruments live in. Set both through SetMetrics; callers who
	// enable metrics should also call Fabric.SetMetrics and the
	// registry's BindEnv.
	Metrics *metrics.Registry
	// Met holds the engine instrument handles. It is a value struct so
	// protocol code can use it unconditionally: with metrics disabled
	// every handle is nil and every call no-ops.
	Met Metrics
	// Why, when non-nil, records wait-for and conflict edges for abort
	// forensics (blame chains, contention graphs). Like Trace it is
	// nil-safe and host-side only: enabling it never changes virtual
	// time, events or randomness.
	Why *causality.Recorder
	// Flight, when non-nil, records per-transaction latency budgets and
	// critical paths (tail forensics). Nil-safe and host-side only, like
	// Why; callers who set it should also call Fabric.SetFlight so wire
	// time is attributed.
	Flight *flight.Recorder

	// lane is the fabric lane (simulation partition) this DB's verbs
	// are counted in: 0 except on partition views.
	lane int
}

// NewDB wraps a pool.
func NewDB(pool *memnode.Pool) *DB {
	return &DB{
		Pool:    pool,
		Fabric:  pool.Fabric(),
		Tables:  map[layout.TableID]*Table{},
		TSO:     &TSO{},
		Tracker: NewConflictTracker(),
		Cost:    DefaultCostModel(),
	}
}

// VerbStats returns the fabric verb counters attributable to this DB's
// partition: the whole fabric on the root DB of a single-partition
// run, the partition's lane on a partition view. Attempt accounting
// diffs it so per-attempt verb counts stay partition-local — and
// therefore deterministic — when partitions execute in parallel.
func (db *DB) VerbStats() rdma.Stats {
	return db.Fabric.LaneStats(db.lane)
}

// PartitionView returns a shard-group-local view of the database for
// partition part, whose coordinators run on env: shared immutable
// placement (pool, fabric, tables, cost model) plus partition-private
// mutable state — a hybrid-logical-clock timestamp oracle floored
// above every load-time draw, a fresh conflict tracker, and a history
// fork (fold it back with History.Absorb after the run). Observability
// probes are sharded: the view records into the partition's own shard
// of each root recorder/registry (written lock-free by the partition's
// worker, merged deterministically at snapshot time), so observed runs
// execute at full worker count with byte-identical output.
func (db *DB) PartitionView(env *sim.Env, part int) *DB {
	parts := 1
	if w := env.World(); w != nil {
		parts = w.Parts()
	}
	v := &DB{
		Pool:    db.Pool,
		Fabric:  db.Fabric,
		Tables:  db.Tables,
		TSO:     NewPartitionTSO(env, part, db.TSO.Last()),
		Tracker: NewConflictTracker(),
		History: db.History.Fork(),
		Cost:    db.Cost,
		Trace:   db.Trace.Shard(part, parts),
		Metrics: db.Metrics.Shard(part, parts),
		Met:     db.Met,
		Why:     db.Why.Shard(part, parts),
		Flight:  db.Flight.Shard(part, parts),
		lane:    part,
	}
	if v.Metrics != db.Metrics {
		// Rebuild the engine instrument handles on the partition's shard
		// registry so counts accrue partition-locally (Pool is shared, so
		// the per-shard-group labels come out the same).
		v.SetMetrics(v.Metrics)
	}
	return v
}

// CreateTable allocates the heap and index for a schema. recSize is
// the engine-specific record footprint (each engine lays records out
// differently); capacity bounds the number of records.
func (db *DB) CreateTable(s layout.Schema, recSize, capacity int) *Table {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	if _, dup := db.Tables[s.ID]; dup {
		panic(fmt.Sprintf("engine: duplicate table id %d", s.ID))
	}
	// Range-style placement policies size their shard boundaries from
	// table capacities; report them before any record is placed.
	if cs, ok := db.Pool.Policy().(placement.CapacitySetter); ok {
		cs.SetCapacity(s.ID, capacity)
	}
	t := &Table{
		Schema:  s,
		Index:   hashindex.New(db.Pool, s.ID, capacity),
		Heap:    db.Pool.AllocHeap(recSize, capacity),
		addr:    make(map[layout.Key]uint64, capacity),
		pending: map[layout.Key]uint64{},
	}
	db.Tables[s.ID] = t
	return t
}

// Table returns the table with the given id.
func (db *DB) Table(id layout.TableID) *Table {
	t := db.Tables[id]
	if t == nil {
		panic(fmt.Sprintf("engine: unknown table %d", id))
	}
	return t
}

// LoadRecord assigns the next heap slot to key, lets encode fill the
// record bytes, and copies them host-side to every replica node — the
// benchmark pre-load step that precedes measurement. FinishLoad must
// be called before transactions run.
func (db *DB) LoadRecord(t *Table, key layout.Key, encode func(buf []byte)) {
	if _, dup := t.addr[key]; dup {
		panic(fmt.Sprintf("engine: duplicate load of key %d in table %q", key, t.Schema.Name))
	}
	if t.nextRow >= t.Heap.Count {
		panic(fmt.Sprintf("engine: table %q full at %d records", t.Schema.Name, t.Heap.Count))
	}
	off := t.Heap.SlotOff(t.nextRow)
	t.nextRow++
	buf := make([]byte, t.Heap.RecSize)
	encode(buf)
	for _, n := range db.Pool.ReplicaNodes(t.Schema.ID, key) {
		copy(n.Region.Bytes()[off:], buf)
	}
	t.addr[key] = off
	t.pending[key] = off
}

// FinishLoad publishes pending records in the hash index.
func (db *DB) FinishLoad() error {
	for _, t := range db.Tables {
		if len(t.pending) == 0 {
			continue
		}
		if err := t.Index.BulkLoad(db.Pool, t.pending); err != nil {
			return err
		}
		t.pending = map[layout.Key]uint64{}
	}
	return nil
}

// WarmCache fills a compute node's address cache with every loaded
// record, the steady-state assumption all three systems are measured
// under (Table 2 counts no index round-trips).
func (db *DB) WarmCache(c *hashindex.AddrCache) {
	for id, t := range db.Tables {
		for k, off := range t.addr {
			c.Put(id, k, off)
		}
	}
}

// ResolveAddr returns the record's offset, consulting the compute
// node's cache first and falling back to one-sided index lookups on
// the record's primary node.
func (db *DB) ResolveAddr(p *sim.Proc, cache *hashindex.AddrCache, qp *rdma.QP,
	table layout.TableID, key layout.Key) (uint64, error) {
	if off, ok := cache.Get(table, key); ok {
		return off, nil
	}
	off, found, err := db.Table(table).Index.Lookup(p, qp, key)
	if err != nil {
		return 0, err
	}
	if !found {
		return 0, fmt.Errorf("engine: key %d not in table %d", key, table)
	}
	cache.Put(table, key, off)
	return off, nil
}

// ReplicaQPs connects queue pairs to every replica node of (table,
// key), primary first.
func (db *DB) ReplicaQPs(table layout.TableID, key layout.Key) []*rdma.QP {
	nodes := db.Pool.ReplicaNodes(table, key)
	qps := make([]*rdma.QP, len(nodes))
	for i, n := range nodes {
		qps[i] = db.Fabric.Connect(n.Region)
	}
	return qps
}
