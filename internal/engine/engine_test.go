package engine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"crest/internal/layout"
	"crest/internal/sim"
)

func cell(k uint64, c int) CellID { return CellID{Table: 1, Key: layout.Key(k), Cell: c} }

func TestHistorySerialReplayAccepts(t *testing.T) {
	h := NewHistory()
	h.SetInitial(cell(0, 0), []byte{0})
	h.Commit(HTxn{TS: 1,
		Reads:  []HRead{{Cell: cell(0, 0), Hash: HashValue([]byte{0})}},
		Writes: []HWrite{{Cell: cell(0, 0), Hash: HashValue([]byte{1})}},
	})
	h.Commit(HTxn{TS: 2,
		Reads:  []HRead{{Cell: cell(0, 0), Hash: HashValue([]byte{1})}},
		Writes: []HWrite{{Cell: cell(0, 0), Hash: HashValue([]byte{2})}},
	})
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestHistoryDetectsLostUpdate(t *testing.T) {
	h := NewHistory()
	h.SetInitial(cell(0, 0), []byte{0})
	// Both transactions read the initial value: the second one's read
	// is inconsistent with serial order.
	h.Commit(HTxn{TS: 1,
		Reads:  []HRead{{Cell: cell(0, 0), Hash: HashValue([]byte{0})}},
		Writes: []HWrite{{Cell: cell(0, 0), Hash: HashValue([]byte{1})}},
	})
	h.Commit(HTxn{TS: 2,
		Reads:  []HRead{{Cell: cell(0, 0), Hash: HashValue([]byte{0})}},
		Writes: []HWrite{{Cell: cell(0, 0), Hash: HashValue([]byte{1})}},
	})
	if err := h.Check(); err == nil {
		t.Fatal("lost update not detected")
	}
}

func TestHistorySnapshotReadsSerializeAtSnapshot(t *testing.T) {
	h := NewHistory()
	h.SetInitial(cell(0, 0), []byte{0})
	h.Commit(HTxn{TS: 1, Writes: []HWrite{{Cell: cell(0, 0), Hash: HashValue([]byte{1})}}})
	h.Commit(HTxn{TS: 2, Writes: []HWrite{{Cell: cell(0, 0), Hash: HashValue([]byte{2})}}})
	// A snapshot reader at snapshot 1 sees value 1 even though its
	// commit timestamp is 9.
	h.Commit(HTxn{TS: 9, Snapshot: true, SnapshotTS: 1,
		Reads: []HRead{{Cell: cell(0, 0), Hash: HashValue([]byte{1})}},
	})
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
	// A snapshot reader at snapshot 0 must see the initial value.
	h.Commit(HTxn{TS: 10, Snapshot: true, SnapshotTS: 0,
		Reads: []HRead{{Cell: cell(0, 0), Hash: HashValue([]byte{0})}},
	})
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestHistoryDuplicateTimestampRejected(t *testing.T) {
	h := NewHistory()
	h.Commit(HTxn{TS: 5, Label: "a"})
	h.Commit(HTxn{TS: 5, Label: "b"})
	if err := h.Check(); err == nil {
		t.Fatal("duplicate TS accepted")
	}
}

func TestHistoryUnloadedCellRejected(t *testing.T) {
	h := NewHistory()
	h.Commit(HTxn{TS: 1, Reads: []HRead{{Cell: cell(0, 0), Hash: 1}}})
	if err := h.Check(); err == nil {
		t.Fatal("read of unloaded cell accepted")
	}
}

func TestHistoryFinalState(t *testing.T) {
	h := NewHistory()
	h.SetInitial(cell(0, 0), []byte{0})
	h.Commit(HTxn{TS: 2, Writes: []HWrite{{Cell: cell(0, 0), Hash: HashValue([]byte{2})}}})
	h.Commit(HTxn{TS: 1, Writes: []HWrite{{Cell: cell(0, 0), Hash: HashValue([]byte{1})}}})
	fs := h.FinalState()
	if fs[cell(0, 0)] != HashValue([]byte{2}) {
		t.Fatal("final state not the highest-TS write")
	}
}

// Property: a history of increments committed in TS order always
// checks out, and swapping two adjacent conflicting reads breaks it.
func TestQuickHistoryIncrementChain(t *testing.T) {
	f := func(n uint8) bool {
		steps := int(n%20) + 2
		h := NewHistory()
		h.SetInitial(cell(0, 0), []byte{0})
		for i := 0; i < steps; i++ {
			h.Commit(HTxn{TS: uint64(i + 1),
				Reads:  []HRead{{Cell: cell(0, 0), Hash: HashValue([]byte{byte(i)})}},
				Writes: []HWrite{{Cell: cell(0, 0), Hash: HashValue([]byte{byte(i + 1)})}},
			})
		}
		if h.Check() != nil {
			return false
		}
		// Corrupt one read.
		h.Txns[steps/2].Reads[0].Hash = HashValue([]byte{255})
		return h.Check() != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConflictTrackerHolders(t *testing.T) {
	ct := NewConflictTracker()
	ct.OnLock(1, 2, 0b011)
	ct.OnLock(1, 2, 0b110) // second holder shares cell 1
	if got := ct.HolderCells(1, 2); got != 0b111 {
		t.Fatalf("holders = %b", got)
	}
	ct.OnUnlock(1, 2, 0b011)
	if got := ct.HolderCells(1, 2); got != 0b110 {
		t.Fatalf("holders after one unlock = %b (cell 1 still held)", got)
	}
	ct.OnUnlock(1, 2, 0b110)
	if got := ct.HolderCells(1, 2); got != 0 {
		t.Fatalf("holders after full unlock = %b", got)
	}
}

func TestConflictTrackerUnbalancedUnlockPanics(t *testing.T) {
	ct := NewConflictTracker()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on unbalanced unlock")
		}
	}()
	ct.OnUnlock(1, 2, 1)
}

func TestConflictTrackerChangedSince(t *testing.T) {
	ct := NewConflictTracker()
	ct.OnUpdate(1, 2, 10, 0b001)
	ct.OnUpdate(1, 2, 20, 0b010)
	ct.OnUpdate(1, 2, 30, 0b100)
	if got := ct.ChangedSince(1, 2, 10); got != 0b110 {
		t.Fatalf("ChangedSince(10) = %b", got)
	}
	if got := ct.ChangedSince(1, 2, 30); got != 0 {
		t.Fatalf("ChangedSince(30) = %b", got)
	}
	// Overflowing the ring makes old queries conservative (all ones).
	for i := 0; i < conflictHistoryLen+2; i++ {
		ct.OnUpdate(1, 2, uint64(100+i), 1)
	}
	if got := ct.ChangedSince(1, 2, 10); got != ^uint64(0) {
		t.Fatalf("evicted history not conservative: %b", got)
	}
}

func TestIsFalseConflict(t *testing.T) {
	if !IsFalseConflict(0b001, 0b110) {
		t.Fatal("disjoint masks not false")
	}
	if IsFalseConflict(0b011, 0b110) {
		t.Fatal("overlapping masks false")
	}
}

func TestRetryPolicyBackoffGrowsAndCaps(t *testing.T) {
	r := RetryPolicy{Base: 2 * sim.Microsecond, Max: 16 * sim.Microsecond}
	rng := rand.New(rand.NewSource(1))
	prev := sim.Duration(0)
	for attempt := 1; attempt <= 8; attempt++ {
		d := r.Backoff(attempt, rng)
		if d < prev && d != r.Max {
			t.Fatalf("backoff shrank before cap: %v after %v", d, prev)
		}
		if d > r.Max {
			t.Fatalf("backoff %v above max", d)
		}
		prev = d
	}
	if r.Backoff(100, rng) != r.Max {
		t.Fatal("backoff not capped")
	}
}

func TestCostModel(t *testing.T) {
	c := CostModel{PerOp: 100, PerCell: 10}
	if c.OpCost(5) != 150 {
		t.Fatalf("OpCost(5) = %v", c.OpCost(5))
	}
}

func TestTxnComputeReadOnly(t *testing.T) {
	t1 := &Txn{Blocks: []Block{{Ops: []Op{{ReadCells: []int{0}}}}}}
	t1.ComputeReadOnly()
	if !t1.ReadOnly {
		t.Fatal("pure read txn not read-only")
	}
	t2 := &Txn{Blocks: []Block{
		{Ops: []Op{{ReadCells: []int{0}}}},
		{Ops: []Op{{WriteCells: []int{1}}}},
	}}
	t2.ComputeReadOnly()
	if t2.ReadOnly {
		t.Fatal("writing txn marked read-only")
	}
	if t2.NumOps() != 2 {
		t.Fatalf("NumOps = %d", t2.NumOps())
	}
}

func TestOpResolveKey(t *testing.T) {
	op := Op{Key: 5}
	if op.ResolveKey(nil) != 5 {
		t.Fatal("static key")
	}
	op.KeyFn = func(state any) layout.Key { return layout.Key(state.(int) * 2) }
	if op.ResolveKey(21) != 42 {
		t.Fatal("dynamic key")
	}
}

func TestTSOMonotonic(t *testing.T) {
	tso := &TSO{}
	prev := uint64(0)
	for i := 0; i < 100; i++ {
		ts := tso.Next()
		if ts <= prev {
			t.Fatal("TSO not monotonic")
		}
		prev = ts
	}
	if tso.Last() != prev {
		t.Fatal("Last mismatch")
	}
}

func TestAbortReasonStrings(t *testing.T) {
	for r := AbortNone; r <= AbortWait; r++ {
		if r.String() == "" {
			t.Fatalf("empty string for %d", r)
		}
	}
}
