package engine

import (
	"testing"

	"crest/internal/hashindex"
	"crest/internal/layout"
	"crest/internal/memnode"
	"crest/internal/rdma"
	"crest/internal/sim"
)

func newTestDB(t *testing.T) (*sim.Env, *DB) {
	t.Helper()
	env := sim.NewEnv(1)
	params := rdma.DefaultParams()
	params.JitterPct = 0
	fabric := rdma.NewFabric(env, params)
	pool := memnode.NewPool(fabric, 2, 1<<20, 1)
	return env, NewDB(pool)
}

func testSchema() layout.Schema {
	return layout.Schema{ID: 7, Name: "t", CellSizes: []int{8, 8}}
}

func TestDBCreateAndLoad(t *testing.T) {
	_, db := newTestDB(t)
	tab := db.CreateTable(testSchema(), 64, 8)
	if db.Table(7) != tab {
		t.Fatal("Table lookup")
	}
	db.LoadRecord(tab, 5, func(buf []byte) { buf[0] = 0xAA })
	if tab.NumLoaded() != 1 {
		t.Fatalf("NumLoaded = %d", tab.NumLoaded())
	}
	off, ok := tab.AddrOf(5)
	if !ok {
		t.Fatal("AddrOf miss")
	}
	// Every replica node received the record bytes.
	for _, n := range db.Pool.ReplicaNodes(7, 5) {
		if n.Region.Bytes()[off] != 0xAA {
			t.Fatalf("node %d missing record", n.ID)
		}
	}
	seen := 0
	tab.Keys(func(k layout.Key, o uint64) {
		if k != 5 || o != off {
			t.Fatalf("Keys gave %d/%d", k, o)
		}
		seen++
	})
	if seen != 1 {
		t.Fatal("Keys iteration")
	}
}

func TestDBDuplicateTablePanics(t *testing.T) {
	_, db := newTestDB(t)
	db.CreateTable(testSchema(), 64, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on duplicate table")
		}
	}()
	db.CreateTable(testSchema(), 64, 8)
}

func TestDBDuplicateLoadPanics(t *testing.T) {
	_, db := newTestDB(t)
	tab := db.CreateTable(testSchema(), 64, 8)
	db.LoadRecord(tab, 1, func([]byte) {})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on duplicate key")
		}
	}()
	db.LoadRecord(tab, 1, func([]byte) {})
}

func TestDBFullTablePanics(t *testing.T) {
	_, db := newTestDB(t)
	tab := db.CreateTable(testSchema(), 64, 2)
	db.LoadRecord(tab, 1, func([]byte) {})
	db.LoadRecord(tab, 2, func([]byte) {})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on full table")
		}
	}()
	db.LoadRecord(tab, 3, func([]byte) {})
}

func TestClaimSlot(t *testing.T) {
	_, db := newTestDB(t)
	tab := db.CreateTable(testSchema(), 64, 2)
	db.LoadRecord(tab, 1, func([]byte) {})
	off, err := tab.ClaimSlot(9)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := tab.AddrOf(9); !ok || got != off {
		t.Fatal("claimed slot not registered")
	}
	if _, err := tab.ClaimSlot(9); err == nil {
		t.Fatal("duplicate claim accepted")
	}
	if _, err := tab.ClaimSlot(10); err == nil {
		t.Fatal("claim beyond capacity accepted")
	}
}

func TestResolveAddrCacheAndIndex(t *testing.T) {
	env, db := newTestDB(t)
	tab := db.CreateTable(testSchema(), 64, 8)
	db.LoadRecord(tab, 3, func([]byte) {})
	if err := db.FinishLoad(); err != nil {
		t.Fatal(err)
	}
	cache := hashindex.NewAddrCache()
	env.Spawn("r", func(p *sim.Proc) {
		qp := db.Fabric.Connect(db.Pool.PrimaryOf(7, 3).Region)
		before := db.Fabric.Stats()
		off1, err := db.ResolveAddr(p, cache, qp, 7, 3)
		if err != nil {
			t.Error(err)
		}
		if db.Fabric.Stats().Sub(before).Reads == 0 {
			t.Error("cold resolve issued no index READ")
		}
		mid := db.Fabric.Stats()
		off2, err := db.ResolveAddr(p, cache, qp, 7, 3)
		if err != nil || off2 != off1 {
			t.Error("cached resolve mismatch")
		}
		if db.Fabric.Stats().Sub(mid).Reads != 0 {
			t.Error("cached resolve issued a READ")
		}
		if _, err := db.ResolveAddr(p, cache, qp, 7, 99); err == nil {
			t.Error("missing key resolved")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWarmCacheLoadsEverything(t *testing.T) {
	_, db := newTestDB(t)
	tab := db.CreateTable(testSchema(), 64, 8)
	for k := layout.Key(0); k < 4; k++ {
		db.LoadRecord(tab, k, func([]byte) {})
	}
	cache := hashindex.NewAddrCache()
	db.WarmCache(cache)
	if cache.Len() != 4 {
		t.Fatalf("warm cache has %d entries", cache.Len())
	}
}

func TestReplicaQPs(t *testing.T) {
	_, db := newTestDB(t)
	qps := db.ReplicaQPs(7, 3)
	if len(qps) != 2 { // f=1 → primary + one backup
		t.Fatalf("%d QPs", len(qps))
	}
	if qps[0].Region() != db.Pool.PrimaryOf(7, 3).Region {
		t.Fatal("first QP is not the primary")
	}
}

func TestQPCacheReuses(t *testing.T) {
	_, db := newTestDB(t)
	c := NewQPCache(db.Fabric)
	r := db.Pool.Nodes()[0].Region
	if c.Get(r) != c.Get(r) {
		t.Fatal("QP not reused")
	}
	if c.Get(r) == c.Get(db.Pool.Nodes()[1].Region) {
		t.Fatal("distinct regions share a QP")
	}
}

func TestHistoryDebugCell(t *testing.T) {
	h := NewHistory()
	c := CellID{Table: 1, Key: 2, Cell: 0}
	h.SetInitial(c, []byte{1})
	h.Commit(HTxn{TS: 1, Label: "w", Writes: []HWrite{{Cell: c, Hash: 42}}})
	h.Commit(HTxn{TS: 2, Label: "r", Reads: []HRead{{Cell: c, Hash: 42}}})
	lines := h.DebugCell(c)
	if len(lines) != 3 {
		t.Fatalf("DebugCell lines: %v", lines)
	}
}

func TestAttemptTotal(t *testing.T) {
	a := Attempt{Exec: 10, Validate: 5, Commit: 3}
	if a.Total() != 18 {
		t.Fatalf("Total = %v", a.Total())
	}
}
