// Package engine defines what the three transaction systems (CREST,
// FORD, Motor) share: the transaction representation handed to them by
// the workloads, per-attempt outcomes with abort classification, the
// timestamp oracle, local CPU cost and retry policies, and the
// serializability-checking history recorder used by tests.
package engine

import (
	"fmt"
	"math/rand"

	"crest/internal/layout"
	"crest/internal/rdma"
	"crest/internal/sim"
)

// Op is one record access inside a transaction: the cells it reads,
// the cells it writes, and the stored-procedure logic that derives the
// written values from the read ones. Each record a transaction touches
// appears in exactly one Op, mirroring the paper's design assumption
// (§3) that stored procedures declare up front which columns of which
// records they read and update.
type Op struct {
	Table layout.TableID
	Key   layout.Key
	// KeyFn, if set, resolves the key when the op's block starts
	// executing — a key dependency in the paper's sense (§5.2): the
	// record cannot even be fetched before earlier blocks ran.
	KeyFn func(state any) layout.Key

	ReadCells  []int // cells whose current values Hook observes
	WriteCells []int // cells Hook produces new values for
	// Insert marks a whole-row insert: every cell is written and the
	// record is claimed by locking all cells (§4.4).
	Insert bool

	// Hook is the transaction logic: it receives the values of
	// ReadCells (in order, as private copies) and returns the new
	// values of WriteCells (in order). It runs on the compute node
	// and must be deterministic given state and read values.
	Hook func(state any, read [][]byte) [][]byte
}

// ResolveKey returns the op's key, evaluating KeyFn if present.
func (o *Op) ResolveKey(state any) layout.Key {
	if o.KeyFn != nil {
		return o.KeyFn(state)
	}
	return o.Key
}

// IsWrite reports whether the op updates the record.
func (o *Op) IsWrite() bool { return len(o.WriteCells) > 0 || o.Insert }

// Block is a pipeline stage of a transaction (§5.2): ops whose keys
// are mutually resolvable once the block starts. CREST releases local
// locks at block boundaries; the record-level baselines use blocks
// only as fetch barriers for key dependencies.
type Block struct {
	Ops []Op
}

// Txn is one transaction instance: an ordered list of blocks plus the
// workload-specific state threaded through every Hook.
type Txn struct {
	Label    string // transaction type, e.g. "Payment"
	Blocks   []Block
	State    any
	ReadOnly bool // no op writes; lets MVCC engines take snapshot reads
}

// ComputeReadOnly fills in ReadOnly from the ops. Key-dependent ops
// count as declared, so this is safe to call at construction time.
func (t *Txn) ComputeReadOnly() {
	for bi := range t.Blocks {
		for oi := range t.Blocks[bi].Ops {
			if t.Blocks[bi].Ops[oi].IsWrite() {
				t.ReadOnly = false
				return
			}
		}
	}
	t.ReadOnly = true
}

// NumOps returns the total op count.
func (t *Txn) NumOps() int {
	n := 0
	for i := range t.Blocks {
		n += len(t.Blocks[i].Ops)
	}
	return n
}

// AbortReason classifies why an attempt failed.
type AbortReason int

// Abort reasons across all three systems.
const (
	AbortNone       AbortReason = iota
	AbortLockFail               // remote lock CAS lost to another holder
	AbortValidation             // a read version/epoch changed before commit
	AbortDependency             // a depended-on local transaction aborted (CREST)
	AbortReverse                // TS_exec reverse ordering detected (CREST §5.2)
	AbortWait                   // local wait aborted (cache admission conflict)
)

// String names the reason.
func (r AbortReason) String() string {
	switch r {
	case AbortNone:
		return "none"
	case AbortLockFail:
		return "lock-conflict"
	case AbortValidation:
		return "validation"
	case AbortDependency:
		return "dependency"
	case AbortReverse:
		return "reverse-order"
	case AbortWait:
		return "wait"
	}
	return fmt.Sprintf("AbortReason(%d)", int(r))
}

// Attempt is the outcome of executing a transaction once.
type Attempt struct {
	Committed bool
	Reason    AbortReason
	// FalseConflict is set on aborts whose conflicting transaction
	// touched disjoint cells of the same record — the paper's "false
	// conflict" (§2.3). Filled by instrumentation, never consulted by
	// protocol code.
	FalseConflict bool
	// CrossShard is set on write attempts whose records spanned shard
	// groups (they paid, or would have paid, the cross-shard prepare
	// round). Always false on single-group topologies.
	CrossShard bool

	// Phase durations of this attempt (virtual time).
	Exec     sim.Duration
	Validate sim.Duration
	Commit   sim.Duration

	// Verbs is the fabric activity attributable to this attempt.
	Verbs rdma.Stats
}

// Total returns the attempt's end-to-end duration.
func (a Attempt) Total() sim.Duration { return a.Exec + a.Validate + a.Commit }

// Coordinator executes transactions one attempt at a time. Each
// coordinator is owned by one simulated process.
type Coordinator interface {
	// Execute runs one attempt of t on process p.
	Execute(p *sim.Proc, t *Txn) Attempt
}

// TSO is the logical timestamp oracle behind TS_commit. The paper does
// not pin down its clock source; a shared monotonic counter is the
// standard substitution and is free of cost in the cooperative
// simulator (exactly one process runs at a time).
//
// On a partitioned simulation a shared counter would be both a data
// race and a nondeterminism source, so partition views substitute a
// hybrid logical clock (NewPartitionTSO): timestamps embed the
// partition's virtual clock in the high bits and the partition id in
// the low bits. Uniqueness is structural (distinct low bits), and the
// serial order stays externally consistent because any cross-partition
// observation travels the fabric, which advances virtual time by at
// least the world's lookahead — so an observer's timestamp always
// exceeds the observed commit's.
type TSO struct {
	last uint64
	env  *sim.Env // non-nil selects the hybrid-logical-clock mode
	part uint64
}

// Hybrid-logical-clock timestamp layout for partitioned runs:
// [ virtual ns : 34 ][ seq : 8 ][ partition : 6 ]. Six partition bits
// cover memnode.MaxShards; eight sequence bits absorb draws within one
// nanosecond (overflow carries into the clock bits, staying monotone).
const (
	hlcPartBits = 6
	hlcSeqBits  = 8
	hlcShift    = hlcPartBits + hlcSeqBits
)

// NewPartitionTSO returns partition part's oracle, drawing from env's
// virtual clock and floored above every timestamp the root oracle has
// issued (load-time draws), so runtime commits always serialize after
// the initial state.
func NewPartitionTSO(env *sim.Env, part int, floor uint64) *TSO {
	if part < 0 || part >= 1<<hlcPartBits {
		panic(fmt.Sprintf("engine: partition %d exceeds the TSO's %d partition bits", part, hlcPartBits))
	}
	return &TSO{env: env, part: uint64(part), last: floor<<hlcShift | uint64(part)}
}

// Next returns the next timestamp, starting from 1 (dense mode) or
// above the hybrid-logical-clock floor (partition mode).
func (t *TSO) Next() uint64 {
	if t.env == nil {
		t.last++
	} else {
		cand := uint64(t.env.Now())<<hlcShift | t.part
		if cand <= t.last {
			// Same-instant redraw: bump the sequence field. The
			// partition bits are below it, so they are preserved.
			cand = t.last + 1<<hlcPartBits
		}
		t.last = cand
	}
	if t.last > layout.MaxTS48 {
		panic("engine: timestamp oracle exceeded 48 bits")
	}
	return t.last
}

// Last returns the most recently issued timestamp.
func (t *TSO) Last() uint64 { return t.last }

// CostModel charges virtual CPU time for compute-node work. The
// simulation does not model core scheduling (see DESIGN.md); these
// small fixed costs keep local execution from being free so that
// pipelining and cache management have measurable effect.
type CostModel struct {
	PerOp   sim.Duration // per record access (hashing, bookkeeping)
	PerCell sim.Duration // per cell touched (copy, hook work)
}

// DefaultCostModel returns the costs used throughout the evaluation.
func DefaultCostModel() CostModel {
	return CostModel{PerOp: 200 * sim.Nanosecond, PerCell: 50 * sim.Nanosecond}
}

// OpCost returns the local cost of touching cells cells of one record.
func (c CostModel) OpCost(cells int) sim.Duration {
	return c.PerOp + sim.Duration(cells)*c.PerCell
}

// RetryPolicy is the exponential backoff applied between attempts of
// an aborted transaction.
type RetryPolicy struct {
	Base      sim.Duration
	Max       sim.Duration
	JitterPct float64
}

// DefaultRetryPolicy is the exponential backoff the harness applies
// between attempts. Beyond fairness, the growing backoff acts as
// congestion control: it sheds concurrent write intents when hot
// records thrash, which measurably stabilizes every system at high
// coordinator counts.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{Base: 4 * sim.Microsecond, Max: 128 * sim.Microsecond, JitterPct: 50}
}

// Backoff returns the wait before retry number attempt (1-based).
func (r RetryPolicy) Backoff(attempt int, rng *rand.Rand) sim.Duration {
	d := r.Base
	for i := 1; i < attempt && d < r.Max; i++ {
		d *= 2
	}
	if d > r.Max {
		d = r.Max
	}
	if r.JitterPct > 0 {
		d += sim.Duration(rng.Float64() * r.JitterPct / 100 * float64(d))
	}
	return d
}
