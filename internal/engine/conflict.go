package engine

import (
	"crest/internal/layout"
)

// ConflictTracker is instrumentation that classifies aborts as true or
// false conflicts (Fig 3 of the paper). Engines report — host-side,
// at zero virtual cost — which cells each lock holder covers and which
// cells each committed update changed; an aborting transaction then
// asks whether the conflicting access overlapped its own cell set.
//
// Protocol code never reads the tracker to make decisions; it exists
// purely so the record-level baselines can report how many of their
// aborts a cell-level protocol would have avoided.
type ConflictTracker struct {
	recs map[recKey]*recConflictState
}

type recKey struct {
	table layout.TableID
	key   layout.Key
}

type recConflictState struct {
	holders [64]int // per-cell count of accessors covering the cell
	updates []update
}

type update struct {
	version uint64
	cells   uint64
}

// conflictHistoryLen bounds the per-record update ring. A validation
// failure against a version older than the ring conservatively counts
// as a true conflict.
const conflictHistoryLen = 16

// NewConflictTracker returns an empty tracker.
func NewConflictTracker() *ConflictTracker {
	return &ConflictTracker{recs: map[recKey]*recConflictState{}}
}

func (c *ConflictTracker) rec(table layout.TableID, key layout.Key) *recConflictState {
	k := recKey{table, key}
	r := c.recs[k]
	if r == nil {
		r = &recConflictState{}
		c.recs[k] = r
	}
	return r
}

// OnLock records that a transaction now covers cells of (table, key).
// Several transactions may cover the same cell (CREST's local sharing
// of a compute node's remote locks), so coverage is counted per cell.
func (c *ConflictTracker) OnLock(table layout.TableID, key layout.Key, cells uint64) {
	r := c.rec(table, key)
	for m := cells; m != 0; m &= m - 1 {
		r.holders[trailingBit(m)]++
	}
}

// OnUnlock removes one transaction's coverage.
func (c *ConflictTracker) OnUnlock(table layout.TableID, key layout.Key, cells uint64) {
	r := c.rec(table, key)
	for m := cells; m != 0; m &= m - 1 {
		b := trailingBit(m)
		if r.holders[b] == 0 {
			panic("engine: conflict tracker unlock without lock")
		}
		r.holders[b]--
	}
}

func trailingBit(m uint64) int {
	n := 0
	for m&1 == 0 {
		m >>= 1
		n++
	}
	return n
}

// HolderCells reports the cells currently covered by lock holders.
func (c *ConflictTracker) HolderCells(table layout.TableID, key layout.Key) uint64 {
	r := c.rec(table, key)
	var mask uint64
	for b, n := range r.holders {
		if n > 0 {
			mask |= 1 << uint(b)
		}
	}
	return mask
}

// OnUpdate records that a committed update produced version and
// changed cells.
func (c *ConflictTracker) OnUpdate(table layout.TableID, key layout.Key, version, cells uint64) {
	r := c.rec(table, key)
	r.updates = append(r.updates, update{version: version, cells: cells})
	if len(r.updates) > conflictHistoryLen {
		r.updates = r.updates[1:]
	}
}

// ChangedSince returns the union of cells changed by updates with
// version > since. If the ring no longer covers since, it returns the
// all-ones mask (conservatively a true conflict).
func (c *ConflictTracker) ChangedSince(table layout.TableID, key layout.Key, since uint64) uint64 {
	r := c.rec(table, key)
	if len(r.updates) > 0 && r.updates[0].version > since+1 {
		return ^uint64(0)
	}
	var cells uint64
	for _, u := range r.updates {
		if u.version > since {
			cells |= u.cells
		}
	}
	return cells
}

// IsFalseConflict reports whether an abort caused by conflictingCells
// is a false conflict for a transaction that accessed myCells: the
// record is shared but the cell sets are disjoint.
func IsFalseConflict(myCells, conflictingCells uint64) bool {
	return myCells&conflictingCells == 0
}
