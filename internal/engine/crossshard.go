package engine

import (
	"crest/internal/memnode"
	"crest/internal/rdma"
	"crest/internal/sim"
)

// ShardSet is a bitmask of participating shard groups, accumulated
// host-side as an attempt resolves its records' primaries.
type ShardSet uint64

// Add marks shard group g as a participant.
func (s *ShardSet) Add(g int) { *s |= 1 << uint(g) }

// Beyond reports whether the set contains any group other than home —
// the condition that makes a write attempt cross-shard.
func (s ShardSet) Beyond(home int) bool {
	return s&^(1<<uint(home)) != 0
}

// PrepareCrossShard is the cross-shard commit's prepare round: it
// writes the already-encoded log entry at the same symmetric offset
// onto the mirrors of the coordinator's log-replica nodes in every
// participating group other than home, as one round-trip (one batch
// per mirror node, matching how the home log write batches per
// replica). The home group's decision write follows in its own
// round-trip, so a cross-shard commit pays exactly one extra RTT and
// holds its locks that much longer — the cost the crossover
// experiment measures. Single-group topologies never call this.
//
// Prepares are durability fan-out only: recovery replays decision
// logs, so an entry that reached a remote group but whose home
// decision write never landed is ignored (a documented
// simplification of the 2PC durability rules).
func PrepareCrossShard(p *sim.Proc, db *DB, qps *QPCache, logN []*memnode.Node, home int, parts ShardSet, off uint64, entry []byte) {
	var batches []rdma.Batch
	for g := 0; g < db.Pool.Shards(); g++ {
		if g == home || parts&(1<<uint(g)) == 0 {
			continue
		}
		for _, n := range db.Pool.MirrorNodes(logN, g) {
			batches = append(batches, rdma.Batch{
				QP:  qps.Get(n.Region),
				Ops: []rdma.Op{{Kind: rdma.OpWrite, Off: off, Data: entry}},
			})
		}
	}
	if len(batches) == 0 {
		return
	}
	if _, err := rdma.PostMulti(p, batches); err != nil {
		panic(err)
	}
}
