package engine

import "crest/internal/rdma"

// QPCache reuses queue pairs per target region, the way a coordinator
// keeps one QP per memory node. Region IDs are small dense fabric
// registration indices, so the cache is a slice lookup — it sits on
// the path of every post a coordinator issues.
type QPCache struct {
	fabric *rdma.Fabric
	qps    []*rdma.QP // indexed by region ID; nil = not yet connected
}

// NewQPCache returns an empty cache over fabric.
func NewQPCache(fabric *rdma.Fabric) *QPCache {
	return &QPCache{fabric: fabric}
}

// Get returns the cached (or newly connected) QP for region r.
func (c *QPCache) Get(r *rdma.Region) *rdma.QP {
	id := r.ID()
	if id < len(c.qps) {
		if qp := c.qps[id]; qp != nil {
			return qp
		}
	} else {
		c.qps = append(c.qps, make([]*rdma.QP, id+1-len(c.qps))...)
	}
	qp := c.fabric.Connect(r)
	c.qps[id] = qp
	return qp
}
