package engine

import "crest/internal/rdma"

// QPCache reuses queue pairs per target region, the way a coordinator
// keeps one QP per memory node.
type QPCache struct {
	fabric *rdma.Fabric
	qps    map[int]*rdma.QP
}

// NewQPCache returns an empty cache over fabric.
func NewQPCache(fabric *rdma.Fabric) *QPCache {
	return &QPCache{fabric: fabric, qps: map[int]*rdma.QP{}}
}

// Get returns the cached (or newly connected) QP for region r.
func (c *QPCache) Get(r *rdma.Region) *rdma.QP {
	if qp, ok := c.qps[r.ID()]; ok {
		return qp
	}
	qp := c.fabric.Connect(r)
	c.qps[r.ID()] = qp
	return qp
}
