package engine

import (
	"crest/internal/memnode"
	"crest/internal/rdma"
)

// QPCache reuses queue pairs per target region, the way a coordinator
// keeps one QP per memory node. Region IDs are small dense fabric
// registration indices, so the cache is a slice lookup — it sits on
// the path of every post a coordinator issues.
type QPCache struct {
	fabric *rdma.Fabric
	qps    []*rdma.QP // indexed by region ID; nil = not yet connected
}

// NewQPCache returns an empty cache over fabric.
func NewQPCache(fabric *rdma.Fabric) *QPCache {
	return &QPCache{fabric: fabric}
}

// Get returns the cached (or newly connected) QP for region r.
func (c *QPCache) Get(r *rdma.Region) *rdma.QP {
	id := r.ID()
	if id < len(c.qps) {
		if qp := c.qps[id]; qp != nil {
			return qp
		}
	} else {
		c.qps = append(c.qps, make([]*rdma.QP, id+1-len(c.qps))...)
	}
	qp := c.fabric.Connect(r)
	c.qps[id] = qp
	return qp
}

// Warm connects the cache to every memory node of pool up front, in
// node order. Coordinators call it at construction, while cluster
// setup is still sequential: a cache miss during a partitioned run
// would draw its queue-pair id from the fabric's global counter in
// worker arrival order, and that order leaks into trace verb events.
// The ids carry no schedule weight, but an observed run must export
// the same bytes at every worker count.
func (c *QPCache) Warm(pool *memnode.Pool) {
	for _, n := range pool.Nodes() {
		c.Get(n.Region)
	}
}
