package engine

import (
	"fmt"
	"hash/fnv"
	"sort"

	"crest/internal/layout"
)

// History records every committed transaction's cell-level reads and
// writes so tests can verify serializability: replaying the commits in
// timestamp order must reproduce every observed read. It is
// instrumentation — engines only feed it when enabled, at zero virtual
// cost.
type History struct {
	On    bool
	Txns  []HTxn
	Init  map[CellID]uint64
	label string
}

// CellID addresses one cell of one record.
type CellID struct {
	Table layout.TableID
	Key   layout.Key
	Cell  int
}

// HTxn is one committed transaction in the history.
type HTxn struct {
	// TS is the commit timestamp claimed as the serial position.
	TS uint64
	// Snapshot marks a read-only MVCC transaction that serialized at
	// SnapshotTS instead of TS.
	Snapshot   bool
	SnapshotTS uint64
	Reads      []HRead
	Writes     []HWrite
	Label      string
}

// HRead is one observed cell read.
type HRead struct {
	Cell CellID
	Hash uint64
}

// HWrite is one installed cell value.
type HWrite struct {
	Cell CellID
	Hash uint64
}

// NewHistory returns an enabled recorder with the given initial cell
// values (as produced by HashValue).
func NewHistory() *History {
	return &History{On: true, Init: map[CellID]uint64{}}
}

// HashValue condenses a cell value for history comparison.
func HashValue(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// SetInitial records the pre-load value of a cell.
func (h *History) SetInitial(c CellID, value []byte) {
	if h == nil || !h.On {
		return
	}
	h.Init[c] = HashValue(value)
}

// Fork returns a partition-private recorder sharing h's initial state:
// commits append locally, and Absorb folds them back after the run, so
// parallel partitions never contend on one slice. Forking a nil or
// disabled history returns h itself (commits no-op everywhere).
func (h *History) Fork() *History {
	if h == nil || !h.On {
		return h
	}
	return &History{On: true, Init: h.Init, label: h.label}
}

// Absorb appends a fork's commits to h. Callers fold forks in
// partition order so the combined slice is deterministic (Check sorts
// by serial position regardless; the order matters only for
// byte-stable dumps).
func (h *History) Absorb(sub *History) {
	if h == nil || !h.On || sub == nil || sub == h {
		return
	}
	h.Txns = append(h.Txns, sub.Txns...)
}

// Commit appends a committed transaction.
func (h *History) Commit(t HTxn) {
	if h == nil || !h.On {
		return
	}
	h.Txns = append(h.Txns, t)
}

// serialPos returns the transaction's position in the claimed serial
// order: snapshot transactions serialize at their snapshot, just
// after the writer that produced that timestamp (a snapshot at s
// includes the version committed at s).
func (t *HTxn) serialPos() (uint64, int) {
	if t.Snapshot {
		return t.SnapshotTS, 1
	}
	return t.TS, 0
}

// Check replays the history in claimed serial order and verifies that
// every read observed exactly the value the serial execution would
// produce. It returns nil iff the history is serializable in that
// order.
func (h *History) Check() error {
	txns := append([]HTxn(nil), h.Txns...)
	sort.SliceStable(txns, func(i, j int) bool {
		ti, bi := txns[i].serialPos()
		tj, bj := txns[j].serialPos()
		if ti != tj {
			return ti < tj
		}
		return bi < bj
	})
	state := make(map[CellID]uint64, len(h.Init))
	for k, v := range h.Init {
		state[k] = v
	}
	seen := map[uint64]string{}
	for i := range txns {
		t := &txns[i]
		if !t.Snapshot {
			if prev, dup := seen[t.TS]; dup {
				return fmt.Errorf("engine: duplicate commit timestamp %d (%s and %s)",
					t.TS, prev, t.Label)
			}
			seen[t.TS] = t.Label
		}
		for _, r := range t.Reads {
			want, ok := state[r.Cell]
			if !ok {
				return fmt.Errorf("engine: txn %s (ts %d) read unloaded cell %+v",
					t.Label, t.TS, r.Cell)
			}
			if r.Hash != want {
				return fmt.Errorf("engine: txn %s (ts %d) read cell %+v value %x; serial replay has %x",
					t.Label, t.TS, r.Cell, r.Hash, want)
			}
		}
		for _, w := range t.Writes {
			state[w.Cell] = w.Hash
		}
	}
	return nil
}

// FinalState returns the cell values after serial replay, for
// comparing against the memory pool's actual contents.
func (h *History) FinalState() map[CellID]uint64 {
	txns := append([]HTxn(nil), h.Txns...)
	sort.SliceStable(txns, func(i, j int) bool {
		ti, bi := txns[i].serialPos()
		tj, bj := txns[j].serialPos()
		if ti != tj {
			return ti < tj
		}
		return bi < bj
	})
	state := make(map[CellID]uint64, len(h.Init))
	for k, v := range h.Init {
		state[k] = v
	}
	for i := range txns {
		for _, w := range txns[i].Writes {
			state[w.Cell] = w.Hash
		}
	}
	return state
}

// DebugCell returns, in serial order, every committed transaction that
// touched cell c, with its serial position and value hashes — a
// debugging aid for serializability violations.
func (h *History) DebugCell(c CellID) []string {
	txns := append([]HTxn(nil), h.Txns...)
	sort.SliceStable(txns, func(i, j int) bool {
		ti, bi := txns[i].serialPos()
		tj, bj := txns[j].serialPos()
		if ti != tj {
			return ti < tj
		}
		return bi < bj
	})
	var out []string
	if v, ok := h.Init[c]; ok {
		out = append(out, fmt.Sprintf("init value=%x", v))
	}
	for _, t := range txns {
		for _, r := range t.Reads {
			if r.Cell == c {
				out = append(out, fmt.Sprintf("ts=%d snap=%v READ %x (%s)", t.TS, t.Snapshot, r.Hash, t.Label))
			}
		}
		for _, w := range t.Writes {
			if w.Cell == c {
				out = append(out, fmt.Sprintf("ts=%d snap=%v WRITE %x (%s)", t.TS, t.Snapshot, w.Hash, t.Label))
			}
		}
	}
	return out
}
