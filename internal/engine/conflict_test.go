package engine

import "testing"

// TestChangedSinceInsideWindowReportsExactCells: a validation failure
// against a version the 16-entry ring still covers gets the exact
// changed-cell union, so a disjoint cell set classifies as a false
// conflict.
func TestChangedSinceInsideWindowReportsExactCells(t *testing.T) {
	c := NewConflictTracker()
	for v := uint64(1); v <= conflictHistoryLen; v++ {
		c.OnUpdate(1, 7, v, 0b0010) // every update touches only cell 1
	}
	got := c.ChangedSince(1, 7, 0)
	if got != 0b0010 {
		t.Fatalf("ChangedSince(0) = %b, want %b", got, 0b0010)
	}
	// A transaction that only touched cell 0 conflicts falsely.
	if !IsFalseConflict(0b0001, got) {
		t.Fatal("disjoint cells inside the window classified as a true conflict")
	}
	if IsFalseConflict(0b0010, got) {
		t.Fatal("overlapping cells classified as a false conflict")
	}
}

// TestChangedSinceOlderThanRingIsConservative is the boundary the
// causality recorder mirrors: once the reader's version has aged out
// of the per-record update ring, the tracker can no longer prove the
// changed cells were disjoint, so it must answer all-ones — a
// conservative true conflict — even for a transaction whose own cells
// were never touched.
func TestChangedSinceOlderThanRingIsConservative(t *testing.T) {
	c := NewConflictTracker()
	// 20 single-cell updates: the ring keeps versions 5..20, so the
	// oldest surviving entry is version 5.
	for v := uint64(1); v <= 20; v++ {
		c.OnUpdate(1, 7, v, 0b0010)
	}

	// since = 4 is the last version the window still covers (the ring's
	// oldest entry, version 5, is since+1): the answer stays exact.
	if got := c.ChangedSince(1, 7, 4); got != 0b0010 {
		t.Fatalf("ChangedSince(4) = %b, want exact %b", got, 0b0010)
	}
	// since = 3 predates the window: updates between 3 and 5 are
	// unknown, so every cell must be assumed changed.
	got := c.ChangedSince(1, 7, 3)
	if got != ^uint64(0) {
		t.Fatalf("ChangedSince(3) = %b, want all-ones", got)
	}
	// The disjoint-cell transaction that was a false conflict inside
	// the window is now, conservatively, a true conflict.
	if IsFalseConflict(0b0001, got) {
		t.Fatal("aged-out validation classified as a false conflict; must be conservatively true")
	}
}

// TestHolderCellsTracksSharedCoverage: per-cell counting keeps a cell
// covered while any holder remains (CREST compute nodes share remote
// locks locally).
func TestHolderCellsTracksSharedCoverage(t *testing.T) {
	c := NewConflictTracker()
	c.OnLock(1, 7, 0b011)
	c.OnLock(1, 7, 0b010) // second holder shares cell 1
	if got := c.HolderCells(1, 7); got != 0b011 {
		t.Fatalf("HolderCells = %b, want %b", got, 0b011)
	}
	c.OnUnlock(1, 7, 0b010)
	if got := c.HolderCells(1, 7); got != 0b011 {
		t.Fatalf("cell 1 dropped while a holder remains: %b", got)
	}
	c.OnUnlock(1, 7, 0b011)
	if got := c.HolderCells(1, 7); got != 0 {
		t.Fatalf("HolderCells after full unlock = %b, want 0", got)
	}
}
