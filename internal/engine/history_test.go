package engine

import "testing"

// TestSnapshotReadSerializesAtSnapshotTS: a read-only MVCC transaction
// that ran at snapshot s must validate against the serial prefix at s
// — just after the writer that produced s — not against the state at
// its own (later) commit timestamp.
func TestSnapshotReadSerializesAtSnapshotTS(t *testing.T) {
	x := cell(7, 0)
	a, b, c := HashValue([]byte("a")), HashValue([]byte("b")), HashValue([]byte("c"))

	build := func() *History {
		h := NewHistory()
		h.SetInitial(x, []byte("a"))
		h.Commit(HTxn{TS: 10, Label: "w1", Writes: []HWrite{{Cell: x, Hash: b}}})
		h.Commit(HTxn{TS: 20, Label: "w2", Writes: []HWrite{{Cell: x, Hash: c}}})
		return h
	}

	// The snapshot reader committed at ts 25 but reads the version the
	// snapshot at ts 10 exposes (w1's write, included in the snapshot).
	h := build()
	h.Commit(HTxn{TS: 25, Snapshot: true, SnapshotTS: 10, Label: "reader",
		Reads: []HRead{{Cell: x, Hash: b}}})
	if err := h.Check(); err != nil {
		t.Fatalf("snapshot read of the snapshot-time version rejected: %v", err)
	}

	// The same reads claimed as a plain transaction at ts 25 must fail:
	// the serial prefix there already holds w2's value.
	h = build()
	h.Commit(HTxn{TS: 25, Label: "reader", Reads: []HRead{{Cell: x, Hash: b}}})
	if err := h.Check(); err == nil {
		t.Fatal("stale read at commit timestamp accepted for a non-snapshot txn")
	}

	// Conversely a snapshot reader must NOT see writes past its
	// snapshot, even ones before its commit timestamp.
	h = build()
	h.Commit(HTxn{TS: 25, Snapshot: true, SnapshotTS: 10, Label: "reader",
		Reads: []HRead{{Cell: x, Hash: c}}})
	if err := h.Check(); err == nil {
		t.Fatal("snapshot reader observing a post-snapshot write accepted")
	}

	// A snapshot at ts 0 predates w1: it reads the initial value.
	h = build()
	h.Commit(HTxn{TS: 30, Snapshot: true, SnapshotTS: 0, Label: "reader",
		Reads: []HRead{{Cell: x, Hash: a}}})
	if err := h.Check(); err != nil {
		t.Fatalf("snapshot at the initial state rejected: %v", err)
	}
}

// TestSnapshotReadersShareTimestamps: snapshot transactions claim no
// serial slot of their own, so several may serialize at the same
// snapshot (and at a writer's timestamp) without tripping the
// duplicate-commit-timestamp check.
func TestSnapshotReadersShareTimestamps(t *testing.T) {
	x := cell(7, 0)
	b := HashValue([]byte("b"))
	h := NewHistory()
	h.SetInitial(x, []byte("a"))
	h.Commit(HTxn{TS: 10, Label: "w1", Writes: []HWrite{{Cell: x, Hash: b}}})
	h.Commit(HTxn{TS: 10, Snapshot: true, SnapshotTS: 10, Label: "r1",
		Reads: []HRead{{Cell: x, Hash: b}}})
	h.Commit(HTxn{TS: 10, Snapshot: true, SnapshotTS: 10, Label: "r2",
		Reads: []HRead{{Cell: x, Hash: b}}})
	if err := h.Check(); err != nil {
		t.Fatalf("snapshot readers sharing a timestamp rejected: %v", err)
	}

	// Two plain writers on one timestamp stay illegal.
	h.Commit(HTxn{TS: 10, Label: "w1-dup", Writes: []HWrite{{Cell: x, Hash: b}}})
	if err := h.Check(); err == nil {
		t.Fatal("duplicate writer timestamp accepted")
	}
}
