package engine

import (
	"testing"

	"crest/internal/rdma"
	"crest/internal/sim"
)

func TestQPCacheReusesQPPerRegion(t *testing.T) {
	env := sim.NewEnv(1)
	f := rdma.NewFabric(env, rdma.DefaultParams())
	r0 := f.Register("mn0", 64)
	r1 := f.Register("mn1", 64)

	c := NewQPCache(f)
	qp0 := c.Get(r0)
	if qp0 == nil {
		t.Fatal("no QP for region 0")
	}
	for i := 0; i < 3; i++ {
		if got := c.Get(r0); got != qp0 {
			t.Fatalf("repeat Get for the same region returned a different QP (%p vs %p)", got, qp0)
		}
	}

	qp1 := c.Get(r1)
	if qp1 == qp0 {
		t.Fatal("distinct regions share one QP")
	}
	if qp0.ID() == qp1.ID() {
		t.Fatalf("distinct regions got the same QP id %d", qp0.ID())
	}
	if got := c.Get(r1); got != qp1 {
		t.Fatal("repeat Get for region 1 returned a different QP")
	}
}

func TestQPCachesAreIndependentPerCoordinator(t *testing.T) {
	env := sim.NewEnv(1)
	f := rdma.NewFabric(env, rdma.DefaultParams())
	r := f.Register("mn0", 64)

	a := NewQPCache(f)
	b := NewQPCache(f)
	if a.Get(r) == b.Get(r) {
		t.Fatal("two caches (coordinators) share one connection")
	}
}
